"""Weighted DecSPC (Appendix C.2): edge deletion and weight increase.

"For edge deletion or weight increase cases, the conditions for the SR and
R sets remain applicable ... the distance constraint for affected vertices
is based on weight rather than the number of hops, i.e.
|sd(v, a) − sd(v, b)| = w_ab.  The main difference when applying Algorithm 5
and Algorithm 6 ... is the use of a Dijkstra-like search."

Both phases mirror the unweighted DecSPC with the old edge weight playing
the role of the +1 hop: SrrSEARCH runs on G_i and prunes vertices v with
sd(v, a) + w_ab != sd(v, b); DecUPDATE runs rank-pruned Dijkstras on the
modified graph.  The §3.2.3 isolated-vertex fast path applies verbatim to
full deletions of a pendant, lower-ranked endpoint.
"""

import heapq

from repro.core.stats import UpdateStats
from repro.exceptions import EdgeNotFound, GraphError

INF = float("inf")


def dec_spc_weighted(graph, index, a, b, stats=None, use_isolated_fast_path=True):
    """Delete edge (a, b) from ``graph`` and repair ``index``."""
    if stats is None:
        stats = UpdateStats(kind="delete", edge=(a, b))
    if not graph.has_edge(a, b):
        raise EdgeNotFound(a, b)
    if use_isolated_fast_path and _try_isolated_fast_path(graph, index, a, b, stats):
        return stats
    w_ab = graph.weight(a, b)
    _decremental_repair(graph, index, a, b, w_ab, stats, remove=True, new_weight=None)
    return stats


def increase_weight(graph, index, a, b, new_weight, stats=None):
    """Increase the weight of edge (a, b) and repair ``index``."""
    if stats is None:
        stats = UpdateStats(kind="delete", edge=(a, b))
    old = graph.weight(a, b)
    if new_weight <= old:
        raise GraphError(
            f"increase_weight: new weight {new_weight} is not above {old}; "
            "use decrease_weight for decreases"
        )
    _decremental_repair(
        graph, index, a, b, old, stats, remove=False, new_weight=new_weight
    )
    return stats


def _try_isolated_fast_path(graph, index, a, b, stats):
    """§3.2.3 fast path for stranding a pendant, lower-ranked endpoint.

    Mirrors the unweighted fast path: stale entries retained by earlier
    incremental updates may reference the stranded vertex as hub even
    though the canonical argument says none can (see
    repro/core/decremental.py), and the reverse hub map purges exactly
    those holders in O(affected).
    """
    rank = index.order.rank_map()
    deg_a = graph.degree(a)
    deg_b = graph.degree(b)
    if deg_b == 1 and deg_a == 1:
        if rank[a] > rank[b]:
            a, b = b, a
    elif deg_a == 1:
        a, b = b, a
    elif deg_b != 1:
        return False
    if rank[a] > rank[b]:
        return False
    graph.remove_edge(a, b)
    rb = rank[b]
    label_of = index.label_set
    for u in list(index.holders(rb)):
        if u != b and label_of(u).remove(rb):
            stats.removed += 1
    lb = label_of(b)
    stats.removed += len(lb) - 1
    lb.clear()
    lb.set(rb, 0, 1)
    stats.isolated_fast_path = True
    return True


def _decremental_repair(graph, index, a, b, w_ab, stats, remove, new_weight):
    order = index.order
    rank = order.rank_map()
    la = index.label_set(a)
    lb = index.label_set(b)
    lab = set(la.hubs) & set(lb.hubs)

    sr_a, r_a = _srr_search_dijkstra(graph, index, a, b, w_ab, lab)
    sr_b, r_b = _srr_search_dijkstra(graph, index, b, a, w_ab, lab)
    stats.sr_a, stats.sr_b = len(sr_a), len(sr_b)
    stats.r_a, stats.r_b = len(r_a), len(r_b)

    if remove:
        graph.remove_edge(a, b)
    else:
        graph.set_weight(a, b, new_weight)

    targets_b = sr_b | r_b
    targets_a = sr_a | r_a
    affected = sorted(sr_a | sr_b, key=lambda v: rank[v])
    stats.affected_hubs = len(affected)
    for h_vertex in affected:
        h_in_lab = rank[h_vertex] in lab
        if h_vertex in sr_a:
            _dec_update_dijkstra(graph, index, h_vertex, targets_b, h_in_lab, stats)
        else:
            _dec_update_dijkstra(graph, index, h_vertex, targets_a, h_in_lab, stats)


def _srr_search_dijkstra(graph, index, a, b, w_ab, lab):
    """Weighted Algorithm 5: Dijkstra from ``a`` pruned at unaffected vertices."""
    rank = index.order.rank_map()
    label_of = index.label_set
    lb = label_of(b)
    b_entry = {h: (d, c) for h, d, c in lb}

    sr, r = set(), set()
    dist = {a: 0}
    count = {a: 1}
    settled = set()
    heap = [(0, rank[a], a)]
    while heap:
        dv, _, v = heapq.heappop(heap)
        if v in settled or dv > dist[v]:
            continue
        settled.add(v)
        ls = label_of(v)
        hubs, dists, counts = ls.hubs, ls.dists, ls.counts
        d_q, c_q = INF, 0
        for i in range(len(hubs)):
            e = b_entry.get(hubs[i])
            if e is not None:
                cand = dists[i] + e[0]
                if cand < d_q:
                    d_q = cand
                    c_q = counts[i] * e[1]
                elif cand == d_q:
                    c_q += counts[i] * e[1]
        if dv + w_ab != d_q:
            continue
        if rank[v] in lab or count[v] == c_q:
            sr.add(v)
        else:
            r.add(v)
        cv = count[v]
        for w, weight in graph.neighbors(v).items():
            if w in settled:
                continue
            cand = dv + weight
            dw = dist.get(w)
            if dw is None or cand < dw:
                dist[w] = cand
                count[w] = cv
                heapq.heappush(heap, (cand, rank[w], w))
            elif cand == dw:
                count[w] += cv
    return sr, r


def _dec_update_dijkstra(graph, index, h_vertex, targets, h_in_lab, stats):
    """Weighted Algorithm 6: rank-pruned Dijkstra from an affected hub."""
    order = index.order
    rank = order.rank_map()
    label_of = index.label_set
    h = rank[h_vertex]
    hub_labels = label_of(h_vertex)
    root_dist = {hr: d for hr, d, _ in hub_labels if hr != h}

    updated = set()
    dist = {h_vertex: 0}
    count = {h_vertex: 1}
    settled = set()
    heap = [(0, h, h_vertex)]
    while heap:
        dv, _, v = heapq.heappop(heap)
        if v in settled or dv > dist[v]:
            continue
        settled.add(v)
        stats.bfs_visits += 1
        ls = label_of(v)
        hubs, dists = ls.hubs, ls.dists
        d_bar = INF
        for i in range(len(hubs)):
            rd = root_dist.get(hubs[i])
            if rd is not None:
                cand = rd + dists[i]
                if cand < d_bar:
                    d_bar = cand
        if d_bar < dv:
            continue
        if v in targets:
            existing = ls.get(h)
            if existing is None:
                ls.set(h, dv, count[v])
                stats.inserted += 1
            else:
                d_i, c_i = existing
                if d_i != dv:
                    ls.set(h, dv, count[v])
                    stats.renew_dist += 1
                elif c_i != count[v]:
                    ls.set(h, dv, count[v])
                    stats.renew_count += 1
            updated.add(v)
        cv = count[v]
        for w, weight in graph.neighbors(v).items():
            if w in settled or h > rank[w]:
                continue
            cand = dv + weight
            dw = dist.get(w)
            if dw is None or cand < dw:
                dist[w] = cand
                count[w] = cv
                heapq.heappush(heap, (cand, rank[w], w))
            elif cand == dw:
                count[w] += cv

    # Unconditional removal phase — see the note in
    # repro.core.decremental._dec_update: stale labels from incremental
    # updates can resurface if removal is gated on the common-hub flag.
    # Narrowed to holders(h) ∩ targets via the reverse hub map.
    del h_in_lab
    for u in index.holders(h) & targets:
        if u not in updated:
            label_of(u).remove(h)
            stats.removed += 1
