"""Bounded fig10/fig11 run: streaming on BKS+WAR, skew on BKS.

The full-profile IND streaming/skew deletions are authentic but take tens
of minutes in pure Python (the paper's own IND DecSPC averages 1,058 s in
C++); this trimmed run keeps the experiment shape on the two next-largest
analogues.  Invoked by the maintainer when a bounded wall-clock matters;
`python -m repro.bench fig10 fig11 --profile full` remains the unbounded
canonical command.
"""

from repro.bench.config import BenchConfig
from repro.bench.runner import run_experiment

cfg = BenchConfig.full()
cfg.streaming_datasets = ["BKS", "WAR"]
cfg.stream_insertions = 60
cfg.stream_deletions = 6
cfg.skew_insertions = 12
cfg.skew_deletions = 4

for name in ["fig10", "fig11"]:
    if name == "fig11":
        cfg.streaming_datasets = ["BKS"]
    result = run_experiment(name, cfg)
    print(result.render())
    print()
    result.save(f"results/full/{name}.json")
