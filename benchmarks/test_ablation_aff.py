"""Ablation bench: the AFF = L(a) ∪ L(b) root set is highly selective."""


def test_ablation_aff_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("ablation_aff", config), rounds=1, iterations=1
    )
    table = result.table("Ablation: AFF")
    ratios = table.column("AFF / n")
    # On the sparse scale-free graphs (the paper's primary setting) the
    # pruned-BFS root set is a small fraction of all vertices — this is
    # exactly why IncSPC beats reconstruction.  The dense WCO analogue has
    # large label sets, so its AFF share is naturally higher.
    assert sum(1 for r in ratios if r < 0.2) >= len(ratios) / 2, ratios
    assert all(r < 0.8 for r in ratios), ratios


def test_benchmark_aff_snapshot(benchmark):
    """Cost of snapshotting AFF from two label sets."""
    from repro.bench.experiments.common import prepare
    from repro.workloads import random_insertions

    prep = prepare("STA")
    upd = random_insertions(prep.graph, 1, seed=9)[0]
    la = prep.index.label_set(upd.u)
    lb = prep.index.label_set(upd.v)

    def snapshot():
        return sorted(set(la.hubs) | set(lb.hubs))

    aff = benchmark(snapshot)
    assert len(aff) >= 1
