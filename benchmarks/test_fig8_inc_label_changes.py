"""Figure 8 bench: label-operation breakdown for incremental updates.

Shape claims from §4.2.2: RenewD (distance renewals) is always the minority
update type, and the per-update index growth is tiny relative to the index.
"""

from repro.bench.experiments.common import prepare


def test_fig8_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("fig8", config), rounds=1, iterations=1
    )
    table = result.table("Figure 8")
    for row in table.rows:
        name, renew_c, renew_d, insert, growth = row
        # RenewD makes up the minority of updates on every graph.
        assert renew_d <= max(renew_c, insert), row
        # Average per-update growth is negligible vs the index size.
        index_bytes = prepare(name).index_bytes
        assert growth < 0.01 * index_bytes, row


def test_benchmark_label_set_mutation(benchmark):
    """The LabelSet upsert kernel that every update op goes through."""
    from repro.core.labels import LabelSet

    def churn():
        ls = LabelSet()
        for h in range(0, 400, 2):
            ls.set(h, h % 7, 1)
        for h in range(399, 0, -2):
            ls.set(h, h % 5, 2)
        for h in range(0, 400, 3):
            ls.remove(h)
        return len(ls)

    size = benchmark(churn)
    assert size > 0
