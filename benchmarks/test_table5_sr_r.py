"""Table 5 bench: affected-set cardinalities |SRa|, |SRb|, |Ra|, |Rb|.

The paper's claim: the affected-hub set SR the algorithm runs BFSs from is
(on most graphs) much smaller than the receiver-only set R, which is what
makes DecSPC tractable.  (The paper's own EUA row is an outlier where SR
exceeds R — so the assertion is about the majority of datasets.)
"""

from repro.bench.experiments.common import prepare
from repro.core.decremental import _srr_search
from repro.workloads import random_deletions


def test_table5_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("table5", config), rounds=1, iterations=1
    )
    table = result.table("Table 5")
    ratios = table.column("|SR| / (|SR|+|R|)")
    # SRb (the smaller hub side) stays tiny, as in the paper.
    srb = table.column("SRb")
    assert all(x < 100 for x in srb), srb
    # On at least half the datasets the hub set is the minority share.
    assert sum(1 for r in ratios if r < 0.5) >= len(ratios) / 2, ratios


def test_benchmark_srr_search(benchmark):
    prep = prepare("EUA")
    graph, index = prep.fresh()
    u, v = random_deletions(graph, 1, seed=3)[0].u, random_deletions(graph, 1, seed=3)[0].v
    la = index.label_set(u)
    lb = index.label_set(v)
    lab = set(la.hubs) & set(lb.hubs)

    def search():
        return _srr_search(graph, index, u, v, lab)

    sr, r = benchmark(search)
    assert u in sr or u in r or sr or r is not None
