"""Figure 7 bench: running-time distributions and query latency.

Shape claims:
  * per-update times sit far below the index construction time (panels a, b);
  * the labeling query beats BiBFS by a wide factor, and update batches do
    not degrade query latency (panel c).
Kernels benchmarked: one SpcQUERY merge and one BiBFS query.
"""

from repro.bench.experiments.common import prepare
from repro.traversal import bibfs_counting
from repro.workloads import random_pairs


def test_fig7_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("fig7", config), rounds=1, iterations=1
    )
    inc_table = result.table("Figure 7(a)")
    dec_table = result.table("Figure 7(b)")
    query_table = result.table("Figure 7(c)")

    # (a): the median insertion is orders of magnitude below construction.
    for row in inc_table.rows:
        median, index_time = row[2], row[5]
        assert median < index_time / 10, row

    # (b): deletions stay below construction too (weaker factor).
    for row in dec_table.rows:
        median, index_time = row[2], row[5]
        assert median < index_time, row

    # (c): labeling wins against BiBFS on every dataset, and the post-update
    # indexes answer within ~3x of the original's latency.
    for row in query_table.rows:
        name, bibfs, ori, inc, dec, ratio = row
        assert bibfs > ori, row
        assert inc < 3 * ori + 5, row
        assert dec < 3 * ori + 5, row


def test_benchmark_label_query(benchmark):
    prep = prepare("STA")
    pairs = random_pairs(prep.graph, 512, seed=1)
    state = {"i": 0}

    def query_one():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return prep.index.query(s, t)

    benchmark(query_one)


def test_benchmark_bibfs_query(benchmark):
    prep = prepare("STA")
    pairs = random_pairs(prep.graph, 128, seed=2)
    state = {"i": 0}

    def query_one():
        s, t = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return bibfs_counting(prep.graph, s, t)

    benchmark(query_one)
