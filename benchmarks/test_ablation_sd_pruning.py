"""Ablation bench: SD-style pruning must corrupt counts; strict must not."""


def test_ablation_sd_pruning_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("ablation_sd_pruning", config), rounds=1, iterations=1
    )
    table = result.table("Ablation: SD-style")
    for row in table.rows:
        name, runs, strict, sd = row
        assert strict == 0, f"strict pruning corrupted the index on {name}"
    # The broken rule corrupts at least one run somewhere.
    total_sd = sum(row[3] for row in table.rows)
    assert total_sd >= 1, "SD-style pruning unexpectedly survived all runs"


def test_benchmark_strict_vs_sd_visits(benchmark):
    """Strict pruning visits more vertices; measure the overhead it buys."""
    from repro.bench.experiments.common import prepare
    from repro.core import inc_spc
    from repro.workloads import random_insertions

    prep = prepare("NTD")
    ins = random_insertions(prep.graph, 20, seed=11)
    state = {"i": 0}

    def setup():
        graph, index = prep.fresh()
        upd = ins[state["i"] % len(ins)]
        state["i"] += 1
        return (graph, index, upd.u, upd.v), {}

    benchmark.pedantic(
        lambda g, i, u, v: inc_spc(g, i, u, v),
        setup=setup, rounds=8, iterations=1,
    )
