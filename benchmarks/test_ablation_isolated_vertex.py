"""Ablation bench: the §3.2.3 isolated-vertex fast path."""


def test_ablation_isolated_vertex_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("ablation_isolated_vertex", config), rounds=1, iterations=1
    )
    table = result.table("Ablation: isolated-vertex")
    measured = [row for row in table.rows if row[1] > 0]
    assert measured, "no pendant edges found in any quick-profile dataset"
    for row in measured:
        name, pendants, fast_ms, slow_ms, speedup = row
        # The fast path must never lose to the general path.
        assert fast_ms <= slow_ms, row


def test_benchmark_pendant_deletion_fast_path(benchmark):
    from repro.bench.experiments.ablations import _attach_pendants, _pendant_edges
    from repro.bench.experiments.common import prepare
    from repro.core import dec_spc

    prep = prepare("EUA")
    base_graph, base_index = prep.fresh()
    pendants = _pendant_edges(base_graph, base_index, limit=5)
    if not pendants:
        _attach_pendants(base_graph, base_index, count=5, seed=1)
        pendants = _pendant_edges(base_graph, base_index, limit=5)
    state = {"i": 0}

    def setup():
        graph, index = base_graph.copy(), base_index.copy()
        u, v = pendants[state["i"] % len(pendants)]
        state["i"] += 1
        return (graph, index, u, v), {}

    benchmark.pedantic(
        lambda g, i, u, v: dec_spc(g, i, u, v),
        setup=setup, rounds=5, iterations=1,
    )
