"""Figure 11 bench: degree-skewed updates.

Shape claim from §4.5: update time shows *no significant correlation* with
the degree of the touched edge — no bucket may dominate by orders of
magnitude, for IncSPC or DecSPC.
"""


def test_fig11_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("fig11", config), rounds=1, iterations=1
    )
    inc_table = result.table("Figure 11 (IncSPC)")
    dec_table = result.table("Figure 11 (DecSPC)")
    for table in (inc_table, dec_table):
        for row in table.rows:
            name, low, uniform, high = row[0], row[1], row[2], row[3]
            values = [v for v in (low, uniform, high) if v > 0]
            # No order-of-magnitude blowup across buckets (paper: "no
            # significant correlation"); allow wide variance, catch 100x.
            assert max(values) < 100 * min(values), row


def test_benchmark_skewed_insertion_high_degree(benchmark, config):
    from repro.bench.experiments.common import apply_updates, prepare
    from repro.workloads import skewed_insertions

    prep = prepare("BKS")

    def setup():
        graph, index = prep.fresh()
        ins = skewed_insertions(graph, 3, seed=4, bucket="high")
        return (graph, index, ins), {}

    benchmark.pedantic(
        lambda g, i, u: apply_updates(g, i, u),
        setup=setup, rounds=3, iterations=1,
    )
