"""Ablation bench: degree ordering vs random ordering."""


def test_ablation_ordering_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("ablation_ordering", config), rounds=1, iterations=1
    )
    table = result.table("Ablation: vertex ordering")
    for row in table.rows:
        name, build_deg, build_rnd, entries_deg, entries_rnd, q_deg, q_rnd = row
        # Degree ordering yields the smaller index (the paper's motivation
        # for adopting it).
        assert entries_deg < entries_rnd, row


def test_benchmark_random_order_build(benchmark):
    from repro.bench.experiments.common import prepare
    from repro.core import build_spc_index

    prep = prepare("EUA")
    index = benchmark(lambda: build_spc_index(prep.graph, strategy="random"))
    assert index.num_entries > prep.index_entries
