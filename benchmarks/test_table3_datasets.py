"""Table 3 bench: dataset statistics + generation kernel."""

from repro.datasets import clear_cache, load_dataset


def test_table3_report(run_and_record, config, benchmark):
    result = run_and_record("table3", config)
    table = result.table("Table 3")
    assert len(table.rows) == len(config.datasets)
    # The analogues preserve the paper's relative ordering by edge count
    # within the selected subset's first and last entries.
    ms = table.column("m")
    paper_ms = table.column("paper m")
    assert (ms[0] < ms[-1]) == (paper_ms[0] < paper_ms[-1])

    def generate():
        clear_cache()
        return load_dataset("EUA", copy=False)

    g = benchmark(generate)
    assert g.num_vertices > 100
