"""Shared fixtures for the pytest-benchmark suite.

Every bench module runs its experiment once (module scope), prints the
paper-style table, saves the JSON payload under ``bench_results/``, and then
benchmarks a representative kernel with assertions on the *shape* of the
result (who wins, by roughly what factor) — absolute numbers are not the
reproduction claim.
"""

import os

import pytest

from repro.bench.config import BenchConfig
from repro.bench.runner import run_experiment

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")


@pytest.fixture(scope="session")
def config():
    """The quick profile keeps the full bench suite in the minutes range."""
    return BenchConfig.quick()


@pytest.fixture(scope="session")
def run_and_record():
    """Run an experiment by name, print its tables, persist the JSON."""
    cache = {}

    def _run(name, config):
        if name not in cache:
            result = run_experiment(name, config)
            print()
            print(result.render())
            os.makedirs(RESULTS_DIR, exist_ok=True)
            result.save(os.path.join(RESULTS_DIR, f"{name}.json"))
            cache[name] = result
        return cache[name]

    return _run
