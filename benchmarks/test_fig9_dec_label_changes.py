"""Figure 9 bench: label-operation breakdown for decremental updates.

Shape claims from §4.3.2: renewals dominate the operation mix, and the net
index-size change (Insert − Remove) stays within kilobytes.
"""

from repro.bench.experiments.common import prepare


def test_fig9_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("fig9", config), rounds=1, iterations=1
    )
    table = result.table("Figure 9")
    renew_dominant = 0
    for row in table.rows:
        name, renew_c, renew_d, insert, remove, net = row
        if renew_c + renew_d >= max(insert, remove):
            renew_dominant += 1
        # Net size drift per update is small vs the index.
        index_bytes = prepare(name).index_bytes
        assert abs(net) < 0.05 * index_bytes, row
    assert renew_dominant >= len(table.rows) / 2


def test_benchmark_dec_update_bfs(benchmark):
    """One full DecSPC on the NTD analogue (general path)."""
    from repro.core import dec_spc
    from repro.workloads import random_deletions

    prep = prepare("NTD")
    dels = random_deletions(prep.graph, 10, seed=5)
    state = {"i": 0}

    def setup():
        graph, index = prep.fresh()
        upd = dels[state["i"] % len(dels)]
        state["i"] += 1
        return (graph, index, upd.u, upd.v), {}

    benchmark.pedantic(
        lambda g, i, u, v: dec_spc(g, i, u, v),
        setup=setup, rounds=8, iterations=1,
    )
