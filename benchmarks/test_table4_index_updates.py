"""Table 4 bench: the headline result.

Shape claims reproduced from the paper:
  * IncSPC's average update time is orders of magnitude below rebuild;
  * DecSPC is slower than IncSPC but still far below rebuild.
Kernels benchmarked: HP-SPC construction, one IncSPC update, one DecSPC
update (on the smallest dataset so rounds stay cheap).
"""

from repro.bench.experiments.common import prepare
from repro.core import build_spc_index, dec_spc, inc_spc
from repro.workloads import random_deletions, random_insertions


def test_table4_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("table4", config), rounds=1, iterations=1
    )
    table = result.table("Table 4")
    inc_speedups = table.column("Inc speedup")
    dec_speedups = table.column("Dec speedup")
    inc_times = table.column("IncSPC (s)")
    dec_times = table.column("DecSPC (s)")
    # IncSPC beats rebuild by a wide margin on every dataset.
    assert all(s > 10 for s in inc_speedups), inc_speedups
    # DecSPC also beats rebuild on every dataset...
    assert all(s > 1 for s in dec_speedups), dec_speedups
    # ... and is the slower of the two on most datasets (paper observation).
    slower = sum(1 for i, d in zip(inc_times, dec_times) if d >= i)
    assert slower >= len(inc_times) / 2


def test_benchmark_hpspc_construction(benchmark):
    prep = prepare("EUA")

    def build():
        return build_spc_index(prep.graph)

    index = benchmark(build)
    assert index.num_entries == prep.index_entries


def test_benchmark_single_incremental_update(benchmark):
    prep = prepare("EUA")
    updates = random_insertions(prep.graph, 50, seed=7)

    state = {"i": 0}

    def setup():
        graph, index = prep.fresh()
        upd = updates[state["i"] % len(updates)]
        state["i"] += 1
        return (graph, index, upd.u, upd.v), {}

    benchmark.pedantic(
        lambda g, i, u, v: inc_spc(g, i, u, v),
        setup=setup, rounds=10, iterations=1,
    )


def test_benchmark_single_decremental_update(benchmark):
    prep = prepare("EUA")
    dels = random_deletions(prep.graph, 20, seed=8)

    state = {"i": 0}

    def setup():
        graph, index = prep.fresh()
        upd = dels[state["i"] % len(dels)]
        state["i"] += 1
        return (graph, index, upd.u, upd.v), {}

    benchmark.pedantic(
        lambda g, i, u, v: dec_spc(g, i, u, v),
        setup=setup, rounds=10, iterations=1,
    )
