"""Figure 10 bench: hybrid streaming updates.

Shape claims from §4.4: accumulated running time grows gradually (with
occasional deletion spikes), the whole stream costs far less than one
reconstruction per update, and the total index-size change is negligible.
"""

from repro.bench.experiments.common import prepare


def test_fig10_report(run_and_record, config, benchmark):
    result = benchmark.pedantic(
        lambda: run_and_record("fig10", config), rounds=1, iterations=1
    )
    table = result.table("Figure 10")
    for row in table.rows:
        name, updates, total, avg, max_step, size_kb, size_ratio = row
        prep = prepare(name)
        # The whole stream is cheaper than rebuilding once per update.
        assert total < prep.build_seconds * updates, row
        # Index size drift is negligible relative to the index.
        assert abs(size_ratio) < 0.05, row
        # Accumulated series is monotone.
        series = result.extra[name]["accumulated_seconds"]
        assert all(b >= a for a, b in zip(series, series[1:]))


def test_benchmark_stream_step(benchmark, config):
    """Average step cost of a short hybrid stream on the BKS analogue."""
    from repro.bench.experiments.common import apply_updates
    from repro.workloads import hybrid_stream

    prep = prepare("BKS")

    def setup():
        graph, index = prep.fresh()
        stream = hybrid_stream(graph, insertions=5, deletions=1, seed=3)
        return (graph, index, stream), {}

    benchmark.pedantic(
        lambda g, i, s: apply_updates(g, i, s),
        setup=setup, rounds=3, iterations=1,
    )
