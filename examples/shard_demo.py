"""Hub-partitioned index shards behind a scatter-gather router.

The 2-hop SPC index distributes over hub space: restrict both endpoint
labels to a slice of hub ranks, compute the (dist, count) partial per
slice, and fold the partials with the same min-dist/sum-count combiner
the shadow auditor uses.  ``repro.shard`` turns that algebra into a
fleet: K shards each hold ~1/K of the label entries (bootstrapped from
a hub-slice-restricted checkpoint, kept fresh by tailing the primary's
label journal) and a router scatters every query to all K at one
consistent cut, merging the partials into the exact unsharded answer.

The demo walks the lifecycle: exact merged answers vs a single engine,
the per-shard memory split, live updates flowing through the label
journal, killing a shard (a missing hub slice must *refuse*, never
undercount), and restarting it.

Run with:  python examples/shard_demo.py
"""

import tempfile

import repro
from repro.exceptions import ShardError
from repro.graph import barabasi_albert
from repro.shard import ShardedCluster
from repro.workloads import random_insertions


def main():
    graph = barabasi_albert(300, attach=3, seed=11)
    engine = repro.open(graph)
    state_dir = tempfile.mkdtemp(prefix="repro-shard-")
    print(f"graph: {engine.graph}, backend: {engine.backend_name}")

    # A reference engine on a copy of the graph keeps an unsharded
    # answer key around for the whole demo.
    oracle = repro.open(graph.copy())

    with ShardedCluster(engine, state_dir, shards=4,
                        partitioner="balanced") as fleet:
        # --- exact merges: every routed answer folds 4 hub-slice
        # partials and must equal the single-engine answer.
        pairs = [(s, t) for s in range(0, 30, 3) for t in range(1, 300, 37)]
        answers = fleet.query_many(pairs)
        assert answers == [oracle.query(s, t) for s, t in pairs]
        print(f"{len(pairs)} scatter-gather answers match the unsharded "
              f"engine exactly")

        # --- the memory buy: each shard materializes only its slice.
        stats = fleet.stats()
        total = sum(s["entries"] for s in stats["router"]["shards"])
        for s in stats["router"]["shards"]:
            print(f"  {s['name']}: {s['entries']} label entries "
                  f"({s['entries'] / total:.1%} of the fleet)")

        # --- live updates: the primary journals per-batch label deltas;
        # shards tail the journal and keep only their slice.
        updates = random_insertions(engine.graph, 30, seed=11)
        fleet.submit_many(updates)
        seq = fleet.sync()
        u = updates[0]
        assert fleet.query(u.u, u.v) == oracle_apply(oracle, updates, u)
        print(f"fleet converged at seq {seq} after {len(updates)} journaled "
              f"updates; merged answers still exact")

        # --- fault model: a dead shard means a missing hub slice, and a
        # missing slice would silently undercount — so the router refuses.
        fleet.kill_shard(0)
        try:
            fleet.query(*pairs[0])
        except ShardError as exc:
            print(f"shard-0 down -> refusal (never a wrong answer): {exc}")

        fleet.restart_shard(0)
        fleet.sync()
        assert fleet.query_many(pairs[:10]) == [oracle.query(s, t)
                                                for s, t in pairs[:10]]
        print("shard-0 re-bootstrapped from checkpoint + journal tail; "
              "merged answers exact again")
        print(f"router: routed={fleet.stats()['router']['routed']} "
              f"refusals={fleet.stats()['router']['refusals']}")


def oracle_apply(oracle, updates, probe):
    """Apply the same updates to the oracle engine, return its answer."""
    for u in updates:
        oracle.apply(u)
    return oracle.query(probe.u, probe.v)


if __name__ == "__main__":
    main()
