"""One metrics substrate across the stack: registry, tracing, exposition.

``repro.obs`` gives every layer the same three instrument kinds — a
monotone counter, a gauge (often a *callback* gauge promoted straight
from an existing ``stats()`` accessor, so the two can never disagree),
and a deterministic log-bucketed histogram whose merge behaves exactly
like recording the union of the observations.  A ``Tracer`` hands out
request-scoped span trees with deterministic ids and an always-keep-slow
retention ring.

The demo instruments a hub-partitioned shard fleet end to end, drives a
seeded workload through it, and then answers the three questions the
layer exists for: *where did the latency go* (per-stage breakdown that
sums exactly to the end-to-end histogram), *what was slow* (a retained
slow trace's span tree), and *what does the outside see* (Prometheus
text + JSON exposition).

Run with:  python examples/obs_demo.py
"""

from repro.obs import to_prometheus_text
from repro.obs.loadgen import STAGES, run_obs_loadgen


def main():
    report = run_obs_loadgen(
        n=250, m=750, shards=3, churn=30, phases=3,
        reads_per_phase=120, tap_rate=0.25, seed=7,
    )
    registry = report["registry"]
    tracer = report["tracer"]
    print(f"instrumented fleet: {report['shards']} shards, "
          f"{report['reads']} routed reads, "
          f"{report['submitted']} updates over {report['phases']} phases")

    # --- where did the latency go?  Each read files its stage timings
    # into shared histograms, including an explicit `unattributed`
    # remainder — so the stage sum reconciles with the end-to-end
    # histogram exactly, not approximately.
    e2e = registry.get("repro_shard_read_latency_seconds")
    print(f"\nper-stage breakdown of {e2e.count} reads "
          f"({e2e.total * 1e3:.2f} ms total):")
    stage_sum = 0.0
    for stage in STAGES:
        hist = registry.get("repro_shard_stage_seconds", stage=stage)
        stage_sum += hist.total
        share = hist.total / e2e.total
        print(f"  {stage:<13} {hist.total * 1e3:8.3f} ms  {share:6.1%}  "
              f"p99 {hist.percentile(99) * 1e6:8.1f} us")
    assert stage_sum == e2e.total, "stages must add up exactly"
    print(f"  {'SUM':<13} {stage_sum * 1e3:8.3f} ms  100.0%  "
          f"(== end-to-end, exactly)")

    # --- what was slow?  The slow ring keeps the traces worth
    # debugging; fast traffic can never evict them.
    stats = tracer.stats()
    print(f"\ntracer: {stats['recorded']} traces recorded "
          f"({stats['slow_recorded']} slow, "
          f"threshold {stats['slow_threshold_s'] * 1e3:.0f} ms)")
    reads = [t for t in tracer.recent() if t.root.name == "shard_query"]
    slowest = max(reads, key=lambda t: t.root.duration)
    print(f"slowest retained read trace {slowest.trace_id} "
          f"({slowest.root.duration * 1e6:.0f} us end to end):")
    for span in slowest.root.children:
        print(f"  {span.name:<13} {span.duration * 1e6:8.1f} us")

    # --- parity by construction: the promoted callback gauges *are*
    # the old accessors, read at exposition time.
    snap = registry.snapshot()["gauges"]
    live = report["stats"]["router"]
    assert snap["repro_shard_routed"] == live["routed"]
    print(f"\npromoted gauge repro_shard_routed == "
          f"router.stats()['routed'] == {live['routed']:.0f}")

    # --- what does the outside see?  One deterministic text page.
    text = to_prometheus_text(registry)
    lines = text.splitlines()
    print(f"\nPrometheus exposition: {len(lines)} lines, e.g.")
    for line in lines:
        if line.startswith("repro_shard_read_latency_seconds_count"):
            print(f"  {line}")
        if line.startswith("repro_serve_writer_batches"):
            print(f"  {line}")

    # --- and it reproduces: a second run with the same seed carries
    # the identical counter fingerprint.
    again = run_obs_loadgen(
        n=250, m=750, shards=3, churn=30, phases=3,
        reads_per_phase=120, tap_rate=0.25, seed=7,
    )
    assert report["counter_values"] == again["counter_values"]
    print(f"\nsame-seed rerun reproduced all "
          f"{len(report['counter_values'])} counter values bit-for-bit")


if __name__ == "__main__":
    main()
