"""Temporal-graph ingestion and scenario replay (the repro.replay layer).

A replay scenario is a named, seeded, byte-reproducible experiment: a
temporal corpus is cut at a warmup point, the tail becomes a timestamped
update stream, and a precomputed query schedule (arrival process x
source picker) is paced against the wall clock through a virtual-clock
time scale — all of it driven through the real serving stack with the
shadow auditor verifying answers as they flow.

Run with:  python examples/replay_demo.py
"""

import io

from repro.datasets import dataset_statistics, load_temporal_dataset
from repro.replay import (
    ReplayPlan,
    get_scenario,
    parse_temporal_edge_list,
    run_replay_scenario,
)


def main():
    # --- 1. Ingestion: any SNAP/Konect-style dump normalizes ----------
    dump = io.StringIO(
        "% a konect-style temporal edge list\n"
        "1 2 1 10.0\n"
        "2 3 1 11.5\n"
        "1 3 1 12.0\n"
        "1 2 -1 15.0\n"       # sign convention: w < 0 is a delete
        "2 3 1 16.0\n"        # duplicate insert: dropped, counted
    )
    log = parse_temporal_edge_list(dump, name="tiny")
    print(f"ingested: {log}")
    print(f"  dropped: {log.dropped}")
    g = log.cut(12.0)
    print(f"  cut(12.0): {g.num_vertices} vertices, {g.num_edges} edges")

    # --- 2. Bundled temporal corpora (registry analogues) -------------
    for key in ("ENR", "DIG", "WBO"):
        row = dataset_statistics(key)
        print(f"{key} ({row['family']}): {row['events']} events, "
              f"span {row['span']:g}, churn {row['churn_rate']:.2f}")

    # --- 3. The plan: all randomness spent before the clock starts ----
    corpus = load_temporal_dataset("ENR", events=500)
    scenario = get_scenario("diurnal").replace(duration=0.8)
    plan = ReplayPlan(scenario, corpus, seed=7)
    d = plan.describe()
    print(f"plan: {d['events_to_replay']} events in {d['batches']} batches, "
          f"{d['queries_planned']} queries, time scale {d['time_scale']:g}x")
    print(f"  fingerprint: {d['fingerprint'][:16]}... (seed-stable)")

    # --- 4. Replay through the live stack, shadow-audited -------------
    report = run_replay_scenario(scenario, seed=7,
                                 corpus_kwargs={"events": 500})
    print(f"replayed {report['events_submitted']} events, answered "
          f"{report['queries_answered']}/{report['queries_issued']} queries "
          f"at {report['read_qps']:.0f} qps "
          f"(p99 {report['read_latency_ms']['p99']:.2f} ms)")
    print(f"  audited {report['auditor']['audited']} answers, "
          f"{report['divergences']} divergences")

    # Same seed, same plan: the deterministic block is reproducible.
    again = run_replay_scenario(scenario, seed=7,
                                corpus_kwargs={"events": 500})
    assert again["deterministic"] == report["deterministic"]
    print("  same-seed rerun: deterministic block identical")

    # --- 5. A fault-windowed shard scenario ---------------------------
    report = run_replay_scenario("churn-window", seed=7,
                                 corpus_kwargs={"events": 500})
    actions = [e["action"] for e in report["fault_injection"]]
    print(f"churn-window on {report['scenario']['fleet']} fleet: "
          f"{report['refusals']} refusals through faults {actions}, "
          f"recovered={report['recovered']}, "
          f"divergences={report['divergences']}")


if __name__ == "__main__":
    main()
