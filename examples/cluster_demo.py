"""WAL-replicated multi-replica serving (the repro.cluster layer).

One durable primary service owns the engine and the write-ahead log; two
replicas bootstrap from its checkpoint and tail the WAL as a replication
stream; a router spreads reads across the fleet under a bounded-staleness
policy.  The demo walks the full lifecycle: replicated reads, sticky
read-your-writes sessions, killing a replica mid-stream, crash-recovering
it from checkpoint + WAL tail, and surviving a WAL compaction.

Run with:  python examples/cluster_demo.py
"""

import tempfile
import threading
import time

import repro
from repro.cluster import SPCCluster
from repro.graph import barabasi_albert
from repro.workloads import random_insertions


def main():
    graph = barabasi_albert(400, attach=3, seed=7)
    engine = repro.open(graph)
    state_dir = tempfile.mkdtemp(prefix="repro-cluster-")
    print(f"graph: {engine.graph}, backend: {engine.backend_name}")

    with SPCCluster(engine, state_dir, replicas=2,
                    policy="bounded_staleness", staleness_delta=8) as c:
        # --- replicated reads: N threads hammer the router while the
        # primary applies a live update stream that replicas tail.
        insertions = random_insertions(engine.graph, 40, seed=7)
        pairs = [(u.u, u.v) for u in insertions]
        reads = [0] * 3

        def reader(slot):
            deadline = time.time() + 0.5
            while time.time() < deadline:
                s, t = pairs[(reads[slot] * 7) % len(pairs)]
                c.query(s, t)  # routed under the staleness bound
                reads[slot] += 1

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(len(reads))]
        for t in threads:
            t.start()
        c.submit_many(insertions)
        for t in threads:
            t.join()
        seq = c.sync()  # whole fleet converged to the primary's seq
        print(f"served {sum(reads)} routed reads from {len(reads)} threads; "
              f"fleet converged at seq {seq}")
        print(f"router: {c.router.stats()}")

        # --- sticky sessions: read-your-writes via an acked watermark.
        session = c.session()
        update = random_insertions(engine.graph, 1, seed=99)[0]
        acked = session.submit(update).ack()
        answer = session.query(update.u, update.v)
        print(f"session acked seq {acked}; read-your-write "
              f"({update.u},{update.v}) -> {answer}")
        assert answer[0] == 1

        # --- fault injection: kill a replica mid-stream, keep serving,
        # then crash-recover it from the current checkpoint + WAL tail.
        c.kill_replica("replica-0")
        churn = random_insertions(engine.graph, 20, seed=13)
        c.submit_many(churn)
        c.flush()
        for _ in range(50):
            c.query(*pairs[0])  # the router routes around the outage
        start = time.perf_counter()
        replica = c.restart_replica("replica-0")
        replica.catch_up(c.primary.applied_seq, timeout=10.0)
        elapsed = (time.perf_counter() - start) * 1e3
        print(f"replica-0 killed, restarted and caught up to seq "
              f"{replica.applied_seq} in {elapsed:.1f} ms "
              f"({replica.bootstraps} bootstrap)")

        # --- compaction: checkpoint + truncate under the replicas' feet;
        # the head marker makes every tailer re-bootstrap safely.
        c.checkpoint(truncate_wal=True)
        c.submit_many([u.undo() for u in reversed(churn)])
        seq = c.sync()
        bootstraps = {name: r.bootstraps for name, r in c.replicas.items()}
        print(f"survived WAL compaction; fleet at seq {seq}, "
              f"bootstraps per replica: {bootstraps}")
        expected = c.primary.query_many(pairs)
        for name, r in c.replicas.items():
            assert r.query_many(pairs) == expected, name
        print("every replica answers identically to the primary")


if __name__ == "__main__":
    main()
