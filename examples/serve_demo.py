"""Snapshot-isolated serving with durability (the repro.serve layer).

A service wraps the engine behind an update queue: reader threads answer
queries lock-free against pinned, immutable snapshots while one writer
applies updates and publishes fresh snapshots under an every-k /
max-staleness policy.  Everything applied is write-ahead logged, so the
service warm-restarts from its checkpoint + WAL tail with identical
answers and no index rebuild.

Run with:  python examples/serve_demo.py
"""

import tempfile
import threading
import time

import repro
from repro.exceptions import ReadOnlyError
from repro.graph import barabasi_albert
from repro.serve import SPCService, restore
from repro.workloads import random_insertions


def main():
    graph = barabasi_albert(400, attach=3, seed=7)
    engine = repro.open(graph)
    print(f"graph: {engine.graph}, backend: {engine.backend_name}")

    state_dir = tempfile.mkdtemp(prefix="repro-serve-")
    with SPCService(engine, durability_dir=state_dir,
                    publish_every=8, max_staleness=0.02) as service:
        # Readers pin one snapshot each and hammer it concurrently.
        insertions = random_insertions(engine.graph, 30, seed=7)
        pairs = [(u.u, u.v) for u in insertions]
        reads = [0] * 3

        def reader(slot):
            deadline = time.time() + 0.5
            while time.time() < deadline:
                snap = service.snapshot()
                snap.query_many(pairs)
                reads[slot] += len(pairs)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(len(reads))]
        for t in threads:
            t.start()
        # ...while the writer applies the update stream underneath them.
        service.submit_many(insertions)
        for t in threads:
            t.join()
        snap = service.flush()
        print(f"served {sum(reads)} reads from {len(reads)} threads while "
              f"applying {len(insertions)} updates")
        print(f"published snapshot: epoch {snap.epoch}, seq {snap.seq}")
        print(f"stats: {service.stats()}")

        # Snapshots are immutable: updates must go through the queue.
        try:
            snap.insert_edge(0, 1)
        except ReadOnlyError as exc:
            print(f"direct mutation rejected: {type(exc).__name__}")

        service.checkpoint()
        answer_before = service.query(*pairs[0])

    # Warm restart: checkpoint + WAL tail, no HP-SPC rebuild.
    start = time.perf_counter()
    restored = restore(state_dir)
    elapsed = time.perf_counter() - start
    try:
        answer_after = restored.query(*pairs[0])
        print(f"restored from {state_dir} in {elapsed * 1e3:.1f} ms; "
              f"query {pairs[0]}: {answer_before} == {answer_after}")
        assert answer_before == answer_after
    finally:
        restored.close()


if __name__ == "__main__":
    main()
