"""Collaboration networks: directed and weighted SPC (paper Appendix A + C).

The paper's Appendix A motivates SPC on co-authorship graphs: many shortest
paths between two scientists suggest future collaboration even when the
intermediaries work in other fields.  This example builds a two-community
collaboration network, answers Erdős-style questions with the undirected
index, then exercises both appendix extensions: a *directed* citation layer
(who cites whom) and a *weighted* layer (collaboration strength as edge
weight), all maintained dynamically.

Run with:  python examples/collaboration_network.py
"""

import random

import repro
from repro import Graph
from repro.graph import DiGraph, WeightedGraph


def build_collaboration_graph(seed=21):
    """Two dense research communities joined by a few interdisciplinary
    authors — the structure from the paper's Figure 12."""
    rng = random.Random(seed)
    g = Graph()
    for v in range(60):
        g.add_vertex(v)
    # Community A: authors 0..29, community B: 30..59.
    for lo, hi in [(0, 30), (30, 60)]:
        for u in range(lo, hi):
            for _ in range(3):
                v = rng.randrange(lo, hi)
                if v != u and not g.has_edge(u, v):
                    g.add_edge(u, v)
    # A handful of cross-field collaborations.
    for u, v in [(2, 31), (5, 40), (11, 52)]:
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def main():
    graph = build_collaboration_graph()
    dyn = repro.open(graph)

    a, b = 0, 59  # one author per community
    d, c = dyn.query(a, b)
    print(f"authors {a} and {b}: collaboration distance {d}, "
          f"{c} shortest chains")

    # A new cross-community paper is published.
    stats = dyn.insert_edge(7, 45)
    d2, c2 = dyn.query(a, b)
    print(f"after new paper (7, 45): distance {d2}, {c2} chains "
          f"({stats.elapsed * 1e3:.2f} ms update)")

    # --- Directed citation layer (Appendix C.1) ---------------------------
    citations = DiGraph.from_edges(
        [(1, 0), (2, 0), (3, 1), (4, 2), (5, 2), (4, 3), (5, 4), (0, 5)]
    )
    cite = repro.open(citations)   # auto-selects the directed backend
    print(f"\ncitation paths 3 ~> 0: {cite.query(3, 0)}")
    cite.insert_edge(3, 2)
    print(f"after new citation 3 -> 2: {cite.query(3, 0)}")

    # --- Weighted collaboration strength (Appendix C.2) -------------------
    strength = WeightedGraph.from_edges(
        [(0, 1, 1), (1, 2, 2), (0, 3, 2), (3, 2, 1), (2, 4, 3)]
    )
    wdyn = repro.open(strength)    # auto-selects the weighted backend
    print(f"\nweighted distance 0 ~ 4: {wdyn.query(0, 4)}")
    # A pair of authors intensify their collaboration: weight drops.
    wdyn.set_weight(1, 2, 1)
    print(f"after stronger tie (1, 2): {wdyn.query(0, 4)}")


if __name__ == "__main__":
    main()
