"""Streaming maintenance vs reconstruction (the paper's §4.4 scenario).

A hybrid stream of edge insertions and deletions hits a mid-size graph.
DSPC applies each update in milliseconds; the reconstruction baseline pays
the full HP-SPC build per update.  This example runs both side by side and
prints the accumulated-cost series the paper plots in Figure 10.

Run with:  python examples/streaming_maintenance.py
"""

import time

import repro
from repro import build_spc_index
from repro.graph import barabasi_albert
from repro.workloads import DeleteEdge, hybrid_stream


def main():
    graph = barabasi_albert(800, attach=3, seed=13)
    print(f"graph: {graph}")

    start = time.perf_counter()
    dyn = repro.open(graph.copy())
    build_time = time.perf_counter() - start
    print(f"initial HP-SPC build: {build_time:.2f} s, "
          f"{dyn.index.num_entries} label entries")

    stream = hybrid_stream(graph, insertions=40, deletions=6, seed=13)
    print(f"stream: {len(stream)} updates "
          f"({sum(isinstance(u, DeleteEdge) for u in stream)} deletions)\n")

    accumulated = 0.0
    checkpoints = {len(stream) // 4, len(stream) // 2, 3 * len(stream) // 4,
                   len(stream) - 1}
    for i, update in enumerate(stream):
        stats = dyn.apply(update)
        accumulated += stats.elapsed
        if i in checkpoints:
            print(f"  after {i + 1:3d} updates: accumulated {accumulated:.3f} s, "
                  f"index {dyn.index.num_entries} entries")

    naive_estimate = build_time * len(stream)
    print(f"\nDSPC total:            {accumulated:.3f} s")
    print(f"reconstruction total:  ~{naive_estimate:.1f} s "
          f"(one {build_time:.2f} s build per update)")
    print(f"speedup:               {naive_estimate / accumulated:,.0f}x")

    # Sanity: the maintained index answers exactly like a fresh build.
    fresh = build_spc_index(dyn.graph)
    from repro import indexes_equivalent

    assert indexes_equivalent(dyn.index, fresh, dyn.graph, sample_pairs=2000)
    print("\nmaintained index verified equivalent to a fresh rebuild")


if __name__ == "__main__":
    main()
