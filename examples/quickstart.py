"""Quickstart: build an SPC-Index, query it, and keep it fresh under updates.

Run with:  python examples/quickstart.py
"""

import repro
from repro import Graph, bibfs_counting, build_spc_index, verify_espc


def main():
    # --- 1. A small social graph (the paper's Figure 2 example) -----------
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 8), (0, 11),
        (1, 2), (1, 5), (1, 6),
        (2, 3), (2, 5),
        (3, 7), (3, 8),
        (4, 5), (4, 7), (4, 9),
        (6, 10),
        (9, 10),
    ]
    graph = Graph.from_edges(edges)
    print(f"graph: {graph}")

    # --- 2. Static index + queries ----------------------------------------
    index = build_spc_index(graph)
    d, c = index.query(4, 6)
    print(f"SPC(4, 6) = distance {d}, {c} shortest paths")
    assert (d, c) == bibfs_counting(graph, 4, 6)  # agrees with online BFS

    # --- 3. Dynamic maintenance through the engine ------------------------
    dyn = repro.open(graph, index=index)   # backend auto-selected: 'core'
    print(f"engine backend: {dyn.backend_name}")

    stats = dyn.insert_edge(3, 9)  # IncSPC: only affected hubs are repaired
    print(
        f"insert (3,9): {stats.affected_hubs} affected hubs, "
        f"{stats.total_label_ops} label ops, {stats.elapsed * 1e3:.2f} ms"
    )
    print(f"SPC(4, 6) after insert = {dyn.query(4, 6)}")

    stats = dyn.delete_edge(1, 2)  # DecSPC: SR/R-guided repair
    print(
        f"delete (1,2): |SR|={stats.sr_a + stats.sr_b}, "
        f"|R|={stats.r_a + stats.r_b}, {stats.elapsed * 1e3:.2f} ms"
    )

    # Vertex churn works too; new vertices always take the lowest rank.
    dyn.insert_vertex(12, edges=[10, 11])
    dyn.delete_vertex(8)
    print(f"after churn: {dyn.graph}, index entries = {dyn.index.num_entries}")

    # --- 4. Batch serving: repeated traffic hits the query cache ----------
    pairs = [(4, 6), (0, 9), (4, 6), (0, 9), (4, 6)]
    answers = dyn.query_many(pairs)
    info = dyn.cache_info()
    print(f"query_many({len(pairs)} pairs) -> {answers[:2]}..., "
          f"cache hits={info['hits']} misses={info['misses']}")

    # --- 5. The index stays exact — verify against BFS ground truth -------
    verify_espc(dyn.graph, dyn.index)
    print("ESPC verified: every query equals BFS ground truth")


if __name__ == "__main__":
    main()
