"""Friend recommendation by shortest-path counting (the paper's §1 example).

Distance alone cannot rank candidates: in the intro's graph H, users b and c
are both at distance 2 from a, but c shares more mutual friends — i.e. more
shortest paths — so c should rank first.  This example scales that idea to a
synthetic social network and keeps recommendations fresh while friendships
form and dissolve, without ever rebuilding the index.

Run with:  python examples/friend_recommendation.py
"""

import random

import repro
from repro.graph import powerlaw_cluster


def recommend(dyn, user, k=5):
    """Top-k friend recommendations for ``user``.

    Candidates are non-neighbors at distance 2, ranked by the number of
    shortest paths (= mutual friends), ties broken by id for determinism.
    """
    graph = dyn.graph
    candidates = []
    for other in graph.vertices():
        if other == user or graph.has_edge(user, other):
            continue
        d, c = dyn.query(user, other)
        if d == 2:
            candidates.append((-c, other))
    candidates.sort()
    return [(other, -neg_c) for neg_c, other in candidates[:k]]


def main():
    rng = random.Random(7)
    graph = powerlaw_cluster(300, attach=3, triangle_prob=0.6, seed=7)
    dyn = repro.open(graph)

    user = max(graph.vertices(), key=graph.degree)
    print(f"user {user} has {graph.degree(user)} friends")
    print("top recommendations (candidate, mutual friends):")
    for other, mutual in recommend(dyn, user):
        print(f"  {other}: {mutual}")

    # The user accepts the top recommendation; the index updates in-place.
    top, _ = recommend(dyn, user)[0]
    stats = dyn.insert_edge(user, top)
    print(f"\nuser {user} befriends {top} "
          f"({stats.elapsed * 1e3:.2f} ms index update)")

    # Someone unfollows; DecSPC repairs the affected labels only.
    victim = next(iter(dyn.graph.neighbors(user)))
    stats = dyn.delete_edge(user, victim)
    print(f"user {user} unfollows {victim} "
          f"({stats.elapsed * 1e3:.2f} ms index update)")

    print("\nrefreshed recommendations:")
    for other, mutual in recommend(dyn, user):
        print(f"  {other}: {mutual}")

    # Consistency check: ranking by counts matches online BFS counting.
    from repro import bfs_counting_pair

    for other, mutual in recommend(dyn, user):
        assert bfs_counting_pair(dyn.graph, user, other) == (2, mutual)
    print("\nrecommendations verified against BFS ground truth")


if __name__ == "__main__":
    main()
