"""Group betweenness via shortest-path counting (the paper's §1 application).

Group betweenness of a vertex set C is

    B(C) = sum over pairs s, t not in C of  delta_st(C) / delta_st

where delta_st counts all shortest s-t paths and delta_st(C) those passing
through C.  Since delta_st(C) = delta_st − delta_st(G \\ C), both terms are
pairwise SPC queries: one on G, one on G with C removed — and removing C is
just a few SPCEngine.delete_vertex calls, no rebuild.

Run with:  python examples/group_betweenness.py
"""

import itertools

import repro
from repro.graph import watts_strogatz

INF = float("inf")


def group_betweenness(dyn_full, group, vertices):
    """B(group) computed from two SPC oracles.

    ``dyn_full`` answers counts on G; a scratch oracle with ``group``
    removed answers counts on G \\ group.
    """
    scratch = repro.open(dyn_full.graph.copy())
    for v in group:
        scratch.delete_vertex(v)

    total = 0.0
    outside = [v for v in vertices if v not in group]
    for s, t in itertools.combinations(outside, 2):
        d_full, c_full = dyn_full.query(s, t)
        if c_full == 0:
            continue
        d_cut, c_cut = scratch.query(s, t)
        surviving = c_cut if d_cut == d_full else 0
        total += (c_full - surviving) / c_full
    return total


def main():
    graph = watts_strogatz(60, k=4, rewire_prob=0.2, seed=5)
    dyn = repro.open(graph)
    vertices = sorted(graph.vertices())

    # Rank single vertices by group betweenness (classic betweenness).
    scored = []
    for v in vertices[:20]:
        scored.append((group_betweenness(dyn, [v], vertices), v))
    scored.sort(reverse=True)
    print("top-5 single-vertex betweenness:")
    for score, v in scored[:5]:
        print(f"  vertex {v}: {score:.1f}")

    # Greedy group of size 3: extend the best singleton.
    best_single = scored[0][1]
    best_pair = max(
        ((group_betweenness(dyn, [best_single, v], vertices), v)
         for _, v in scored[1:8]),
    )
    group = [best_single, best_pair[1]]
    print(f"\ngreedy group of 2: {group} with B = {best_pair[0]:.1f}")

    # The graph changes; betweenness follows without any rebuild.
    u, v = next(iter(sorted(dyn.graph.edges())))
    dyn.delete_edge(u, v)
    print(f"\nafter deleting edge ({u}, {v}):")
    print(f"  B({group}) = {group_betweenness(dyn, group, vertices):.1f}")


if __name__ == "__main__":
    main()
