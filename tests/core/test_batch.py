"""Tests for batch-update coalescing."""

import random

import pytest

from repro.core import DynamicSPC
from repro.core.batch import coalesce_edge_updates
from repro.exceptions import WorkloadError
from repro.graph import Graph, erdos_renyi, path_graph
from repro.workloads import DeleteEdge, InsertEdge, InsertVertex


class TestCoalesce:
    def test_cancelling_pair_disappears(self):
        g = path_graph(3)
        ops = [InsertEdge(0, 2), DeleteEdge(0, 2)]
        effective, cancelled = coalesce_edge_updates(g, ops)
        assert effective == []
        assert cancelled == 2

    def test_delete_then_reinsert_cancels(self):
        g = Graph.from_edges([(0, 1)])
        ops = [DeleteEdge(0, 1), InsertEdge(0, 1), InsertEdge(0, 2)]
        effective, cancelled = coalesce_edge_updates(g, ops)
        assert effective == [InsertEdge(0, 2)]
        assert cancelled == 2

    def test_endpoint_order_normalized(self):
        g = path_graph(3)
        ops = [InsertEdge(2, 0), DeleteEdge(0, 2)]
        effective, cancelled = coalesce_edge_updates(g, ops)
        assert effective == []
        assert cancelled == 2

    def test_net_insert_keeps_one_op(self):
        g = path_graph(3)
        ops = [InsertEdge(0, 2), DeleteEdge(0, 2), InsertEdge(0, 2)]
        effective, cancelled = coalesce_edge_updates(g, ops)
        assert effective == [InsertEdge(0, 2)]
        assert cancelled == 2

    def test_rejects_vertex_updates(self):
        g = path_graph(3)
        with pytest.raises(WorkloadError):
            coalesce_edge_updates(g, [InsertVertex(9)])

    def test_pure_function_no_mutation(self):
        g = path_graph(3)
        before = sorted(g.edges())
        coalesce_edge_updates(g, [InsertEdge(0, 2)])
        assert sorted(g.edges()) == before


class TestApplyBatch:
    def test_batch_equals_sequential_final_state(self):
        rng = random.Random(4)
        g = erdos_renyi(15, 30, seed=4)

        # A churny batch: random ops, some of which cancel.
        ops = []
        simulated = g.copy()
        for _ in range(30):
            u, v = rng.sample(sorted(simulated.vertices()), 2)
            if simulated.has_edge(u, v):
                ops.append(DeleteEdge(u, v))
                simulated.remove_edge(u, v)
            elif rng.random() < 0.7:
                ops.append(InsertEdge(u, v))
                simulated.add_edge(u, v)

        dyn = DynamicSPC(g.copy())
        stats, cancelled = dyn.apply_batch(ops)
        assert sorted(dyn.graph.edges()) == sorted(simulated.edges())
        assert len(stats) + cancelled == len(ops)
        assert dyn.check()

    def test_fully_cancelling_batch_is_free(self):
        g = path_graph(4)
        dyn = DynamicSPC(g)
        entries_before = dyn.index.num_entries
        stats, cancelled = dyn.apply_batch(
            [InsertEdge(0, 3), DeleteEdge(0, 3), DeleteEdge(1, 2), InsertEdge(1, 2)]
        )
        assert stats == []
        assert cancelled == 4
        assert dyn.index.num_entries == entries_before
