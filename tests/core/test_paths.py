"""Unit + property tests for shortest-path reconstruction from the index."""

import random

import pytest

from repro.core import (
    build_spc_index,
    count_paths_through,
    enumerate_shortest_paths,
    is_on_some_shortest_path,
    shortest_path,
)
from repro.graph import Graph, cycle_graph, erdos_renyi, path_graph


def _is_valid_path(graph, path, s, t, length):
    if path[0] != s or path[-1] != t or len(path) != length + 1:
        return False
    return all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))


class TestShortestPath:
    def test_path_graph(self):
        g = path_graph(5)
        index = build_spc_index(g)
        assert shortest_path(g, index, 0, 4) == [0, 1, 2, 3, 4]

    def test_self_path(self):
        g = path_graph(3)
        index = build_spc_index(g)
        assert shortest_path(g, index, 1, 1) == [1]

    def test_unreachable_returns_none(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        index = build_spc_index(g)
        assert shortest_path(g, index, 0, 2) is None

    def test_random_graphs_paths_valid(self):
        rng = random.Random(1)
        for seed in range(10):
            g = erdos_renyi(20, 40, seed=seed)
            index = build_spc_index(g)
            for _ in range(10):
                s, t = rng.randrange(20), rng.randrange(20)
                d = index.distance(s, t)
                p = shortest_path(g, index, s, t)
                if d == float("inf"):
                    assert p is None
                else:
                    assert _is_valid_path(g, p, s, t, d)


class TestEnumerate:
    def test_count_matches_enumeration(self):
        for seed in range(8):
            g = erdos_renyi(12, 26, seed=seed)
            index = build_spc_index(g)
            for s in range(0, 12, 3):
                for t in range(1, 12, 4):
                    paths = list(enumerate_shortest_paths(g, index, s, t))
                    assert len(paths) == index.count(s, t), (seed, s, t)
                    d = index.distance(s, t)
                    for p in paths:
                        assert _is_valid_path(g, p, s, t, d)
                    # All paths distinct.
                    assert len({tuple(p) for p in paths}) == len(paths)

    def test_matches_networkx(self):
        import networkx as nx

        g = erdos_renyi(15, 35, seed=3)
        index = build_spc_index(g)
        nxg = nx.Graph(list(g.edges()))
        nxg.add_nodes_from(g.vertices())
        for s, t in [(0, 14), (1, 13), (2, 7)]:
            if index.count(s, t) == 0:
                continue
            ours = sorted(tuple(p) for p in enumerate_shortest_paths(g, index, s, t))
            theirs = sorted(tuple(p) for p in nx.all_shortest_paths(nxg, s, t))
            assert ours == theirs

    def test_limit(self):
        from repro.graph import complete_bipartite

        g = complete_bipartite(2, 6)
        index = build_spc_index(g)
        assert index.count(0, 1) == 6
        assert len(list(enumerate_shortest_paths(g, index, 0, 1, limit=3))) == 3

    def test_unreachable_yields_nothing(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        index = build_spc_index(g)
        assert list(enumerate_shortest_paths(g, index, 0, 2)) == []


class TestThroughVertex:
    def test_on_path_predicate(self):
        g = path_graph(5)
        index = build_spc_index(g)
        assert is_on_some_shortest_path(index, 0, 4, 2)
        assert not is_on_some_shortest_path(index, 0, 1, 3)

    def test_count_through_decomposition(self):
        g = cycle_graph(6)
        index = build_spc_index(g)
        # 0 -> 3 has two shortest paths; each middle vertex carries one.
        assert count_paths_through(index, 0, 3, 1) == 1
        assert count_paths_through(index, 0, 3, 4) == 1
        assert count_paths_through(index, 0, 3, 0) == 2  # endpoint: all

    def test_count_through_off_path(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 3)])
        index = build_spc_index(g)
        assert count_paths_through(index, 0, 2, 3) == 0

    def test_count_through_sums_to_total(self):
        # Summing over vertices at a fixed distance k from s recovers spc.
        g = erdos_renyi(15, 40, seed=9)
        index = build_spc_index(g)
        for s, t in [(0, 14), (2, 11)]:
            d, c = index.query(s, t)
            if c == 0 or d < 2:
                continue
            k = d // 2
            level = [v for v in g.vertices() if index.distance(s, v) == k]
            total = sum(count_paths_through(index, s, t, v) for v in level)
            assert total == c
