"""Unit tests for DecSPC beyond the paper's Figure 6 trace."""

import random

import pytest

from repro.core import build_spc_index, dec_spc
from repro.exceptions import EdgeNotFound
from repro.graph import Graph, cycle_graph, erdos_renyi, path_graph
from repro.verify import check_invariants, verify_espc

INF = float("inf")


class TestSingleDeletions:
    def test_delete_bridge_disconnects(self):
        g = path_graph(4)
        index = build_spc_index(g)
        dec_spc(g, index, 1, 2)
        assert index.query(0, 3) == (INF, 0)
        assert index.query(0, 1) == (1, 1)
        assert verify_espc(g, index)

    def test_delete_from_cycle_reroutes(self):
        g = cycle_graph(6)
        index = build_spc_index(g)
        dec_spc(g, index, 0, 1)
        assert index.query(0, 1) == (5, 1)
        assert verify_espc(g, index)

    def test_delete_one_of_parallel_paths(self):
        # Two length-2 paths 0-1-3 and 0-2-3; deleting (1, 3) leaves one.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        index = build_spc_index(g)
        dec_spc(g, index, 1, 3)
        assert index.query(0, 3) == (2, 1)
        assert verify_espc(g, index)

    def test_missing_edge_raises_before_mutation(self):
        g = path_graph(4)
        index = build_spc_index(g)
        with pytest.raises(EdgeNotFound):
            dec_spc(g, index, 0, 3)
        assert verify_espc(g, index)

    def test_distance_unchanged_count_drops(self):
        # The §2.3 critique of RA-based methods: deleting an edge can leave
        # sd unchanged while spc must drop.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        index = build_spc_index(g)
        assert index.query(0, 4) == (3, 2)
        dec_spc(g, index, 2, 3)
        assert index.query(0, 4) == (3, 1)
        assert verify_espc(g, index)


class TestDeletionSequences:
    def test_random_deletions_stay_exact(self):
        rng = random.Random(11)
        g = erdos_renyi(22, 55, seed=11)
        index = build_spc_index(g)
        edges = sorted(g.edges())
        rng.shuffle(edges)
        for u, v in edges[:25]:
            dec_spc(g, index, u, v)
            assert verify_espc(g, index), f"after delete ({u},{v})"
            assert check_invariants(index)

    def test_dismantle_entire_graph(self):
        g = erdos_renyi(12, 26, seed=12)
        index = build_spc_index(g)
        for u, v in sorted(g.edges()):
            dec_spc(g, index, u, v)
        assert g.num_edges == 0
        assert verify_espc(g, index)
        # Every vertex keeps exactly its self-label.
        for v in g.vertices():
            assert index.labels(v) == [(v, 0, 1)]

    def test_stats_record_sr_r_sizes(self):
        g = erdos_renyi(20, 50, seed=13)
        index = build_spc_index(g)
        u, v = sorted(g.edges())[0]
        stats = dec_spc(g, index, u, v, use_isolated_fast_path=False)
        assert stats.sr_a >= 1  # at least the endpoint itself
        assert stats.sr_b >= 1
        assert stats.kind == "delete"


class TestInterleavedWithIncremental:
    def test_insert_then_delete_roundtrip_queries(self):
        from repro.core import inc_spc

        g = erdos_renyi(18, 36, seed=14)
        index = build_spc_index(g)
        baseline = {
            (s, t): index.query(s, t)
            for s in range(18)
            for t in range(18)
        }
        inc_spc(g, index, 0, 17) if not g.has_edge(0, 17) else None
        if g.has_edge(0, 17):
            dec_spc(g, index, 0, 17)
        for pair, expected in baseline.items():
            assert index.query(*pair) == expected

    def test_alternating_updates(self):
        from repro.core import inc_spc

        rng = random.Random(15)
        g = erdos_renyi(20, 40, seed=15)
        index = build_spc_index(g)
        for step in range(30):
            if step % 2 == 0:
                # insert a random absent edge
                while True:
                    u, v = rng.randrange(20), rng.randrange(20)
                    if u != v and not g.has_edge(u, v):
                        inc_spc(g, index, u, v)
                        break
            else:
                u, v = rng.choice(sorted(g.edges()))
                dec_spc(g, index, u, v)
            assert verify_espc(g, index), f"step {step}"
