"""Unit tests for the reverse hub map on SPCIndex and the fast paths it feeds."""

import pytest

import repro
from repro.core import build_spc_index, dec_spc, inc_spc
from repro.core.index import SPCIndex
from repro.exceptions import IndexCorruption
from repro.graph import Graph
from repro.graph.generators import erdos_renyi, path_graph, star_graph
from repro.verify import check_invariants


def holders_from_labels(index):
    expected = {}
    for v in index.vertices():
        for h in index.label_set(v).hubs:
            expected.setdefault(h, set()).add(v)
    return expected


class TestMaintainedMap:
    def test_builder_populates(self):
        index = build_spc_index(erdos_renyi(25, 60, seed=2))
        assert index.holders_map() == holders_from_labels(index)

    def test_empty_hub_returns_empty_set(self):
        index = build_spc_index(path_graph(3))
        assert index.holders(10_000) == frozenset()

    def test_holders_tracks_insert_and_delete(self):
        g = path_graph(6)
        index = build_spc_index(g)
        inc_spc(g, index, 0, 5)
        assert index.holders_map() == holders_from_labels(index)
        dec_spc(g, index, 0, 5)
        assert index.holders_map() == holders_from_labels(index)

    def test_no_empty_holder_sets_kept(self):
        g = path_graph(6)
        index = build_spc_index(g)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]:
            dec_spc(g, index, u, v)
        assert all(index.holders_map().values())
        assert index.holders_map() == holders_from_labels(index)


class TestIsolatedFastPath:
    def test_fast_path_uses_holders(self):
        g = star_graph(8)
        index = build_spc_index(g)
        stats = dec_spc(g, index, 0, 3)
        assert stats.isolated_fast_path
        assert index.holders_map() == holders_from_labels(index)
        assert index.query(0, 3) == (float("inf"), 0)
        assert index.query(3, 3) == (0, 1)

    def test_stale_hub_purged_via_holders(self):
        # Build a shape where an incremental insert leaves a stale label
        # referencing a low-ranked vertex as hub, then strand that vertex:
        # the fast path must purge the stale entry via holders, not a sweep.
        g = Graph.from_edges([(0, 1), (1, 2)])
        index = build_spc_index(g, order=[0, 1, 2])
        inc_spc(g, index, 0, 2)   # triangle; stale entries possible later
        dec_spc(g, index, 1, 2)
        dec_spc(g, index, 0, 2)   # strands 2
        assert index.holders_map() == holders_from_labels(index)
        for s in (0, 1):
            assert index.query(s, 2) == (float("inf"), 0)
        assert check_invariants(index)


class TestDropVertexLabels:
    def test_drop_purges_stale_hub_references(self):
        g = path_graph(4)
        index = build_spc_index(g, order=[0, 1, 2, 3])
        # Plant a stale Lemma 3.1-style leftover referencing vertex 3 as
        # hub in another label set, then drop vertex 3: the reverse map
        # must locate and purge it without a sweep.
        r3 = index.rank(3)
        index.label_set(0).set(r3, 5, 2)
        assert 0 in index.holders(r3)
        index.drop_vertex_labels(3)
        assert r3 not in index.label_set(0)
        assert index.holders(r3) == frozenset()
        assert index.holders_map() == holders_from_labels(index)

    def test_drop_after_isolation(self):
        g = star_graph(10)
        index = build_spc_index(g)
        dec_spc(g, index, 0, 9)
        index.drop_vertex_labels(9)
        assert 9 not in index
        assert index.holders_map() == holders_from_labels(index)


class TestRoundtrips:
    def test_from_dict_rebuilds_map(self):
        index = build_spc_index(erdos_renyi(15, 30, seed=1))
        restored = SPCIndex.from_dict(index.to_dict())
        assert restored.holders_map() == index.holders_map()

    def test_copy_has_independent_map(self):
        g = path_graph(5)
        index = build_spc_index(g)
        clone = index.copy()
        dec_spc(g, index, 3, 4)
        assert clone.holders_map() != index.holders_map()
        assert clone.holders_map() == holders_from_labels(clone)


class TestInvariantWiring:
    def test_check_invariants_validates_map(self):
        g = path_graph(5)
        index = build_spc_index(g)
        assert check_invariants(index)
        # Corrupt the map directly: a claimed holder without a label.
        index.holders_map().setdefault(0, set()).add(999)
        with pytest.raises(IndexCorruption):
            check_invariants(index)

    def test_engine_check_invariants_all_backends(self):
        from repro.graph.generators import random_directed, random_weighted

        for engine in (
            repro.open(erdos_renyi(15, 30, seed=1)),
            repro.open(random_directed(12, 40, seed=1)),
            repro.open(random_weighted(12, 25, seed=1)),
        ):
            assert engine.check_invariants()

    def test_engine_check_invariants_detects_corruption(self):
        engine = repro.open(path_graph(4))
        engine.index.holders_map()[999] = {0}
        with pytest.raises(IndexCorruption):
            engine.check_invariants()
