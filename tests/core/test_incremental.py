"""Unit tests for IncSPC beyond the paper's Figure 3 trace."""

import random

import pytest

from repro.core import build_spc_index, inc_spc
from repro.exceptions import DuplicateEdge
from repro.graph import Graph, erdos_renyi, path_graph
from repro.verify import check_invariants, verify_espc

INF = float("inf")


class TestSingleInsertions:
    def test_shortcut_edge_updates_distance(self):
        g = path_graph(6)
        index = build_spc_index(g)
        inc_spc(g, index, 0, 5)
        assert index.query(0, 5) == (1, 1)
        assert verify_espc(g, index)

    def test_parallel_path_updates_count_only(self):
        # 0-1-2 plus new 0-3, 3-2 creates a second length-2 path.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 3)])
        index = build_spc_index(g)
        stats = inc_spc(g, index, 3, 2)
        assert index.query(0, 2) == (2, 2)
        assert verify_espc(g, index)
        assert stats.kind == "insert"

    def test_connecting_two_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        index = build_spc_index(g)
        assert index.query(0, 3) == (INF, 0)
        inc_spc(g, index, 1, 2)
        assert index.query(0, 3) == (3, 1)
        assert verify_espc(g, index)

    def test_attach_isolated_vertex(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        index = build_spc_index(g)
        inc_spc(g, index, 1, 2)
        assert index.query(0, 2) == (2, 1)
        assert verify_espc(g, index)

    def test_duplicate_edge_rejected_without_corruption(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        index = build_spc_index(g)
        with pytest.raises(DuplicateEdge):
            inc_spc(g, index, 0, 1)
        assert verify_espc(g, index)

    def test_stale_labels_never_surface(self):
        # After a shortcut, old longer-distance labels may remain, but all
        # queries must still be exact (Lemma 3.1 discussion).
        g = path_graph(8)
        index = build_spc_index(g)
        inc_spc(g, index, 0, 7)
        inc_spc(g, index, 1, 6)
        assert verify_espc(g, index)
        assert check_invariants(index)


class TestInsertionSequences:
    def test_many_random_insertions_stay_exact(self):
        rng = random.Random(3)
        g = erdos_renyi(25, 40, seed=3)
        index = build_spc_index(g)
        inserted = 0
        while inserted < 20:
            u, v = rng.randrange(25), rng.randrange(25)
            if u == v or g.has_edge(u, v):
                continue
            inc_spc(g, index, u, v)
            inserted += 1
            assert verify_espc(g, index), f"after insert ({u},{v})"

    def test_densify_to_clique(self):
        g = path_graph(6)
        index = build_spc_index(g)
        for u in range(6):
            for v in range(u + 1, 6):
                if not g.has_edge(u, v):
                    inc_spc(g, index, u, v)
        assert verify_espc(g, index)
        assert index.query(0, 5) == (1, 1)

    def test_stats_accumulate_sensibly(self):
        g = path_graph(10)
        index = build_spc_index(g)
        stats = inc_spc(g, index, 0, 9)
        assert stats.affected_hubs >= 1
        assert stats.total_label_ops > 0
        assert stats.bfs_visits >= stats.total_label_ops
        assert stats.removed == 0  # insertions never remove labels
