"""Unit tests for HP-SPC construction on assorted graph families."""

import pytest

from repro.core import build_spc_index
from repro.graph import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
    watts_strogatz,
)
from repro.verify import check_invariants, verify_espc


@pytest.mark.parametrize(
    "graph_factory",
    [
        lambda: path_graph(12),
        lambda: cycle_graph(11),
        lambda: star_graph(15),
        lambda: complete_graph(8),
        lambda: grid_graph(4, 5),
        lambda: erdos_renyi(40, 90, seed=1),
        lambda: barabasi_albert(60, attach=2, seed=2),
        lambda: watts_strogatz(50, k=4, rewire_prob=0.3, seed=3),
    ],
    ids=["path", "cycle", "star", "clique", "grid", "er", "ba", "ws"],
)
def test_espc_on_family(graph_factory):
    g = graph_factory()
    index = build_spc_index(g)
    assert verify_espc(g, index)
    assert check_invariants(index)


class TestOrderingEffects:
    def test_random_order_still_correct(self):
        g = erdos_renyi(35, 70, seed=5)
        index = build_spc_index(g, strategy="random")
        assert verify_espc(g, index)

    def test_natural_order_still_correct(self):
        g = erdos_renyi(35, 70, seed=6)
        index = build_spc_index(g, strategy="natural")
        assert verify_espc(g, index)

    def test_degree_order_smaller_than_random(self):
        # The paper's motivation for degree ordering: smaller index.
        g = barabasi_albert(150, attach=3, seed=7)
        by_degree = build_spc_index(g, strategy="degree")
        by_random = build_spc_index(g, strategy="random")
        assert by_degree.num_entries < by_random.num_entries

    def test_explicit_order_list(self):
        g = path_graph(5)
        index = build_spc_index(g, order=[4, 3, 2, 1, 0])
        assert verify_espc(g, index)
        assert index.rank(4) == 0


class TestStructure:
    def test_highest_rank_vertex_has_only_self_label(self):
        g = erdos_renyi(20, 40, seed=8)
        index = build_spc_index(g)
        top = index.vertex_of_rank(0)
        assert index.labels(top) == [(top, 0, 1)]

    def test_star_center_covers_everything(self):
        g = star_graph(10)
        index = build_spc_index(g)  # center ranks first
        # Every leaf: exactly the center label and the self label.
        for leaf in range(1, 10):
            assert len(index.label_set(leaf)) == 2
        assert index.query(3, 7) == (2, 1)

    def test_clique_label_chain(self):
        # In a clique under natural order, L(v_i) = {v_0..v_i}: each earlier
        # vertex is an (i, 1, 1) hub and nothing can be pruned below it.
        g = complete_graph(5)
        index = build_spc_index(g, strategy="natural")
        for v in range(5):
            assert len(index.label_set(v)) == v + 1

    def test_isolated_vertices(self):
        from repro.graph import Graph

        g = Graph.from_edges([(0, 1)], vertices=[2, 3])
        index = build_spc_index(g)
        assert index.query(2, 3) == (float("inf"), 0)
        assert index.query(2, 2) == (0, 1)

    def test_empty_graph(self):
        from repro.graph import Graph

        index = build_spc_index(Graph())
        assert index.num_entries == 0
