"""Golden tests: every worked example in the paper, asserted exactly.

These tests pin the implementation to the paper's own traces:

* Table 2   — the full SPC-Index of the Figure 2 example graph;
* Example 2.1 / 2.2 — query evaluation and canonical vs non-canonical labels;
* Figure 3  — the incremental trace for inserting (v3, v9);
* Example 3.9 / Figure 4 — the decremental toy motivation;
* Example 3.13 / Figure 6 — SR/R sets and the decremental trace for
  deleting (v1, v2).
"""

import pytest

from repro.core import build_spc_index, dec_spc, inc_spc
from repro.core.decremental import _srr_search
from repro.verify import check_invariants, verify_espc
from tests.conftest import PAPER_INDEX

INF = float("inf")


class TestTable2Construction:
    def test_index_matches_table2_exactly(self, paper_graph, paper_order):
        index = build_spc_index(paper_graph, order=paper_order)
        for v, expected in PAPER_INDEX.items():
            assert index.labels(v) == expected, f"L(v{v}) mismatch"

    def test_total_label_count(self, paper_index):
        expected_entries = sum(len(entries) for entries in PAPER_INDEX.values())
        assert paper_index.num_entries == expected_entries

    def test_invariants_hold(self, paper_index, paper_graph):
        assert check_invariants(paper_index, paper_graph)

    def test_espc_cover_constraint(self, paper_graph, paper_index):
        assert verify_espc(paper_graph, paper_index)


class TestQueryExamples:
    def test_example_2_1_spc_query_v4_v6(self, paper_index):
        # H = {v1, v4}, sd = 3, spc = 1*1 + 1*1 = 2.
        assert paper_index.query(4, 6) == (3, 2)

    def test_example_2_2_canonical_label(self, paper_index):
        # (v0, 2, 2) in L(v5) is canonical: spc(v0, v5) = 2 = sigma.
        assert paper_index.label_set(5).get(0) == (2, 2)
        assert paper_index.query(0, 5) == (2, 2)

    def test_example_2_2_non_canonical_label(self, paper_index):
        # (v2, 2, 1) in L(v8) is non-canonical: spc(v2, v8) = 2 > 1.
        assert paper_index.label_set(8).get(2) == (2, 1)
        assert paper_index.query(2, 8) == (2, 2)

    def test_self_query(self, paper_index):
        assert paper_index.query(7, 7) == (0, 1)

    def test_disconnected_pair(self, paper_graph, paper_order):
        graph = paper_graph
        graph.add_vertex(12)
        order_list = paper_order.as_list() + [12]
        index = build_spc_index(graph, order=order_list)
        assert index.query(0, 12) == (INF, 0)

    def test_pre_query_excludes_own_rank(self, paper_index):
        # PreQUERY(v4, v6) may only use hubs above v4: H = {v1}, d = 3.
        d, c = paper_index.pre_query(4, 6)
        assert (d, c) == (3, 1)

    def test_pre_query_unreachable_via_higher_hubs(self, paper_index):
        # PreQUERY(v0, anything) has no hubs above v0 at all.
        assert paper_index.pre_query(0, 9) == (INF, 0)


class TestFigure3Incremental:
    """Insert (v3, v9) into the example graph (Example 3.5 / 3.6)."""

    def test_aff_set(self, paper_graph, paper_index):
        stats = inc_spc(paper_graph, paper_index, 3, 9)
        # AFF = hubs of L(v3) u L(v9) = {v0, v1, v2, v3, v4, v6, v9}.
        assert stats.affected_hubs == 7

    def test_label_updates_match_trace(self, paper_graph, paper_index):
        inc_spc(paper_graph, paper_index, 3, 9)
        l9 = paper_index.label_set(9)
        # Hub v0: (v0,4,4) renewed to (v0,2,1).
        assert l9.get(0) == (2, 1)
        # Hub v1: (v1,3,2) renewed to (v1,3,3).
        assert l9.get(1) == (3, 3)
        # Hub v2: (v2,3,1) renewed to (v2,2,1).
        assert l9.get(2) == (2, 1)
        # Hub v3 (omitted in the paper's table): (v3,3,1) -> (v3,1,1).
        assert l9.get(3) == (1, 1)
        # Hub v0 at v4 and v10: counting renewed.
        assert paper_index.label_set(4).get(0) == (3, 4)
        assert paper_index.label_set(10).get(0) == (3, 2)
        # Hub v2 at v10: new label inserted.
        assert paper_index.label_set(10).get(2) == (3, 1)

    def test_update_operation_counts(self, paper_graph, paper_index):
        stats = inc_spc(paper_graph, paper_index, 3, 9)
        # Derived from the full trace (paper table + the omitted hubs):
        # RenewD: v9@v0, v9@v2, v9@v3, v10@v3.
        assert stats.renew_dist == 4
        # RenewC: v4@v0, v10@v0, v9@v1, v4@v3.
        assert stats.renew_count == 4
        # Insert: (v2,3,1) into L(v10), (v3,3,1) into L(v6).
        assert stats.inserted == 2
        assert stats.removed == 0

    def test_espc_after_insert(self, paper_graph, paper_index):
        inc_spc(paper_graph, paper_index, 3, 9)
        assert verify_espc(paper_graph, paper_index)
        assert check_invariants(paper_index)

    def test_new_counts_are_correct(self, paper_graph, paper_index):
        inc_spc(paper_graph, paper_index, 3, 9)
        # sd(v3, v4) stays 2 but gains a second path (v3-v9-v4).
        assert paper_index.query(3, 4) == (2, 2)
        # v8 was explicitly NOT in AFF; its queries must still be exact.
        assert paper_index.query(8, 9) == (2, 1)


class TestExample39Toy:
    """Figure 4: deleting (a, b) must fix L(u) via a non-hub SR vertex."""

    def test_initial_labels(self, toy_graph, toy_order):
        index = build_spc_index(toy_graph, order=toy_order)
        assert index.labels("u") == [
            ("h", 3, 1), ("a", 2, 1), ("b", 1, 1), ("u", 0, 1),
        ]
        assert index.labels("b") == [("h", 2, 1), ("a", 1, 1), ("b", 0, 1)]

    def test_deletion_updates_and_inserts(self, toy_graph, toy_order):
        index = build_spc_index(toy_graph, order=toy_order)
        dec_spc(toy_graph, index, "a", "b")
        # (h, 3, 1) -> (h, 6, 1): the shortest h-u path now runs h-w-w1..w4-u.
        assert index.label_set("u").get(index.order.rank("h")) == (6, 1)
        # (w, 5, 1) appears even though w was never a hub of a or b.
        assert index.label_set("u").get(index.order.rank("w")) == (5, 1)
        assert verify_espc(toy_graph, index)

    def test_w_is_in_sr_by_condition_b(self, toy_graph, toy_order):
        index = build_spc_index(toy_graph, order=toy_order)
        la = index.label_set("a")
        lb = index.label_set("b")
        lab = set(la.hubs) & set(lb.hubs)
        sr_a, r_a = _srr_search(toy_graph, index, "a", "b", lab)
        assert "w" in sr_a
        assert "h" in sr_a  # h is a common hub of a and b (Condition A)


class TestFigure6Decremental:
    """Delete (v1, v2) from the example graph (Examples 3.13 / 3.15)."""

    def test_sr_and_r_sets(self, paper_graph, paper_index):
        la = paper_index.label_set(1)
        lb = paper_index.label_set(2)
        lab = set(la.hubs) & set(lb.hubs)
        sr_v1, r_v1 = _srr_search(paper_graph, paper_index, 1, 2, lab)
        sr_v2, r_v2 = _srr_search(paper_graph, paper_index, 2, 1, lab)
        assert sr_v1 == {1, 6, 10}
        assert r_v1 == set()
        assert sr_v2 == {2}
        assert r_v2 == {3, 7}

    def test_stats_cardinalities(self, paper_graph, paper_index):
        stats = dec_spc(paper_graph, paper_index, 1, 2)
        assert (stats.sr_a, stats.r_a) == (3, 0)
        assert (stats.sr_b, stats.r_b) == (1, 2)
        assert stats.affected_hubs == 4  # SR = {v1, v2, v6, v10}

    def test_label_updates_match_trace(self, paper_graph, paper_index):
        dec_spc(paper_graph, paper_index, 1, 2)
        # (v1,1,1) in L(v2) renewed to (v1,2,1): new path v1-v5-v2.
        assert paper_index.label_set(2).get(1) == (2, 1)
        # (v1,2,1) deleted from L(v3) in the label-removal phase.
        assert paper_index.label_set(3).get(1) is None
        # (v1,3,2) in L(v7) renewed to (v1,3,1).
        assert paper_index.label_set(7).get(1) == (3, 1)
        # (v2,4,1) inserted into L(v10): new path v2-v5-v4-v9-v10.
        assert paper_index.label_set(10).get(2) == (4, 1)

    def test_operation_counts(self, paper_graph, paper_index):
        stats = dec_spc(paper_graph, paper_index, 1, 2)
        assert stats.renew_dist == 1   # v2@v1
        assert stats.renew_count == 1  # v7@v1
        assert stats.inserted == 1     # v10@v2
        assert stats.removed == 1      # v3@v1
        assert not stats.isolated_fast_path

    def test_espc_after_delete(self, paper_graph, paper_index):
        dec_spc(paper_graph, paper_index, 1, 2)
        assert verify_espc(paper_graph, paper_index)
        assert check_invariants(paper_index)
        assert paper_index.query(1, 2) == (2, 2)  # v1-v0-v2 and v1-v5-v2


class TestIsolatedVertexOptimization:
    """§3.2.3: deleting the only edge of a low-ranked degree-1 vertex."""

    def test_fast_path_applies_to_v11(self, paper_graph, paper_index):
        # v11 has degree 1 (edge to v0) and ranks below v0.
        stats = dec_spc(paper_graph, paper_index, 0, 11)
        assert stats.isolated_fast_path
        assert paper_index.labels(11) == [(11, 0, 1)]
        assert paper_index.query(0, 11) == (INF, 0)
        assert verify_espc(paper_graph, paper_index)

    def test_fast_path_counts_removed_labels(self, paper_graph, paper_index):
        stats = dec_spc(paper_graph, paper_index, 0, 11)
        assert stats.removed == 1  # (v0, 1, 1) dropped from L(v11)

    def test_fast_path_argument_order_irrelevant(self, paper_graph, paper_index):
        stats = dec_spc(paper_graph, paper_index, 11, 0)
        assert stats.isolated_fast_path
        assert verify_espc(paper_graph, paper_index)

    def test_fast_path_can_be_disabled(self, paper_graph, paper_index):
        stats = dec_spc(paper_graph, paper_index, 0, 11,
                        use_isolated_fast_path=False)
        assert not stats.isolated_fast_path
        assert verify_espc(paper_graph, paper_index)
        assert paper_index.labels(11) == [(11, 0, 1)]

    def test_fast_path_skipped_when_pendant_ranks_higher(self):
        # A degree-1 vertex that ranks ABOVE its neighbor must take the
        # general path: other vertices may hold it as a hub.
        from repro.graph import Graph
        from repro.order import VertexOrder

        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        # Order places the pendant 0 highest.
        index = build_spc_index(g, order=VertexOrder([0, 1, 2, 3]))
        stats = dec_spc(g, index, 0, 1)
        assert not stats.isolated_fast_path
        assert verify_espc(g, index)
