"""Unit tests for LabelSet and the packed 64-bit encoding."""

import pytest

from repro.core.labels import (
    COUNT_BITS,
    ENTRY_BYTES,
    LabelSet,
    pack_entry,
    unpack_entry,
)


class TestLabelSet:
    def test_set_keeps_sorted(self):
        ls = LabelSet()
        ls.set(5, 2, 1)
        ls.set(1, 3, 2)
        ls.set(3, 1, 1)
        assert ls.hubs == [1, 3, 5]
        assert list(ls) == [(1, 3, 2), (3, 1, 1), (5, 2, 1)]

    def test_set_returns_operation(self):
        ls = LabelSet()
        assert ls.set(2, 1, 1) == "inserted"
        assert ls.set(2, 1, 5) == "replaced"
        assert ls.get(2) == (1, 5)

    def test_get_missing(self):
        ls = LabelSet()
        ls.set(1, 1, 1)
        assert ls.get(0) is None
        assert ls.get(2) is None

    def test_contains(self):
        ls = LabelSet()
        ls.set(4, 1, 1)
        assert 4 in ls
        assert 3 not in ls

    def test_remove(self):
        ls = LabelSet()
        ls.set(1, 1, 1)
        ls.set(2, 2, 2)
        assert ls.remove(1)
        assert not ls.remove(1)
        assert ls.hubs == [2]
        assert len(ls) == 1

    def test_clear(self):
        ls = LabelSet()
        ls.set(1, 1, 1)
        ls.clear()
        assert len(ls) == 0

    def test_as_dict_and_copy(self):
        ls = LabelSet()
        ls.set(0, 0, 1)
        ls.set(7, 3, 4)
        assert ls.as_dict() == {0: (0, 1), 7: (3, 4)}
        clone = ls.copy()
        clone.set(0, 9, 9)
        assert ls.get(0) == (0, 1)

    def test_repr_readable(self):
        ls = LabelSet()
        ls.set(0, 0, 1)
        assert repr(ls) == "LabelSet[(0,0,1)]"


class TestPackedEncoding:
    def test_roundtrip(self):
        packed = pack_entry(12345, 678, 99999)
        assert unpack_entry(packed) == (12345, 678, 99999)

    def test_fits_64_bits(self):
        packed = pack_entry((1 << 25) - 1, (1 << 10) - 1, (1 << 29) - 1)
        assert packed < (1 << 64)

    def test_count_saturates(self):
        packed = pack_entry(0, 0, 1 << 40)
        assert unpack_entry(packed)[2] == (1 << COUNT_BITS) - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_entry(1 << 25, 0, 1)
        with pytest.raises(ValueError):
            pack_entry(0, 1 << 10, 1)
        with pytest.raises(ValueError):
            pack_entry(0, 0, -1)

    def test_labelset_packed(self):
        ls = LabelSet()
        ls.set(3, 2, 5)
        assert [unpack_entry(p) for p in ls.packed()] == [(3, 2, 5)]

    def test_entry_bytes_constant(self):
        assert ENTRY_BYTES == 8
