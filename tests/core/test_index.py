"""Unit tests for SPCIndex: queries, serialization, size accounting."""

import pytest

from repro.core import SPCIndex, build_spc_index
from repro.exceptions import VertexNotFound
from repro.graph import Graph, path_graph
from repro.order import VertexOrder

INF = float("inf")


class TestBareIndex:
    def test_self_labels_by_default(self):
        index = SPCIndex(VertexOrder([0, 1, 2]))
        assert index.query(0, 0) == (0, 1)
        assert index.query(0, 2) == (INF, 0)

    def test_missing_vertex(self):
        index = SPCIndex(VertexOrder([0]))
        with pytest.raises(VertexNotFound):
            index.query(0, 5)

    def test_rank_accessors(self):
        index = SPCIndex(VertexOrder([5, 7]))
        assert index.rank(5) == 0
        assert index.vertex_of_rank(1) == 7
        assert 5 in index and 9 not in index

    def test_add_vertex_appends_rank(self):
        index = SPCIndex(VertexOrder([0, 1]))
        r = index.add_vertex(9)
        assert r == 2
        assert index.query(9, 9) == (0, 1)

    def test_drop_vertex_labels(self):
        index = SPCIndex(VertexOrder([0, 1]))
        index.drop_vertex_labels(1)
        with pytest.raises(VertexNotFound):
            index.query(1, 1)
        with pytest.raises(VertexNotFound):
            index.drop_vertex_labels(1)


class TestQueries:
    def test_labels_in_id_space(self, paper_index):
        assert paper_index.labels(1) == [(0, 1, 1), (1, 0, 1)]
        assert paper_index.hubs(8) == {0, 2, 3, 8}

    def test_query_symmetric(self, paper_index):
        for s, t in [(4, 6), (0, 9), (3, 10), (11, 5)]:
            assert paper_index.query(s, t) == paper_index.query(t, s)

    def test_distance_and_count_helpers(self, paper_index):
        assert paper_index.distance(4, 6) == 3
        assert paper_index.count(4, 6) == 2

    def test_pre_query_is_upper_bound(self, paper_index):
        for s in range(12):
            for t in range(12):
                d, _ = paper_index.query(s, t)
                d_bar, _ = paper_index.pre_query(s, t)
                assert d_bar >= d


class TestSizeAccounting:
    def test_num_entries_and_bytes(self, paper_index):
        assert paper_index.size_bytes == 8 * paper_index.num_entries

    def test_average_and_max_label_size(self, paper_index):
        assert paper_index.max_label_size() == 7  # L(v9) and L(v10)
        expected_avg = paper_index.num_entries / 12
        assert paper_index.average_label_size() == pytest.approx(expected_avg)

    def test_empty_index_sizes(self):
        index = SPCIndex(VertexOrder([]), with_self_labels=False)
        assert index.num_entries == 0
        assert index.average_label_size() == 0.0
        assert index.max_label_size() == 0


class TestSerialization:
    def test_roundtrip(self, paper_graph, paper_index):
        payload = paper_index.to_dict()
        import json

        payload = json.loads(json.dumps(payload))  # force JSON types
        restored = SPCIndex.from_dict(payload)
        for v in range(12):
            assert restored.labels(v) == paper_index.labels(v)
        assert restored.query(4, 6) == (3, 2)

    def test_copy_independent(self, paper_index):
        clone = paper_index.copy()
        clone.label_set(5).set(0, 9, 9)
        assert paper_index.label_set(5).get(0) == (2, 2)
        assert clone.query(4, 6) == paper_index.query(4, 6)


class TestAgainstSmallGraphs:
    def test_path(self):
        g = path_graph(6)
        index = build_spc_index(g)
        assert index.query(0, 5) == (5, 1)

    def test_two_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        index = build_spc_index(g)
        assert index.query(0, 3) == (INF, 0)
        assert index.query(2, 3) == (1, 1)

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex(0)
        index = build_spc_index(g)
        assert index.query(0, 0) == (0, 1)
