"""Unit tests for the update/stream statistics containers."""

from repro.core import StreamStats, UpdateStats


class TestUpdateStats:
    def test_total_label_ops(self):
        s = UpdateStats(renew_count=2, renew_dist=3, inserted=4, removed=1)
        assert s.total_label_ops == 10

    def test_net_entry_change(self):
        s = UpdateStats(inserted=4, removed=6)
        assert s.net_entry_change == -2

    def test_merge_accumulates(self):
        a = UpdateStats(renew_count=1, inserted=2, bfs_visits=10, elapsed=0.5,
                        sr_a=3, r_b=4)
        b = UpdateStats(renew_count=2, removed=1, bfs_visits=5, elapsed=0.25,
                        sr_a=1, r_b=2)
        a.merge(b)
        assert a.renew_count == 3
        assert a.inserted == 2 and a.removed == 1
        assert a.bfs_visits == 15
        assert a.elapsed == 0.75
        assert a.sr_a == 4 and a.r_b == 6

    def test_merge_returns_self_for_chaining(self):
        a = UpdateStats()
        assert a.merge(UpdateStats(inserted=1)) is a

    def test_defaults(self):
        s = UpdateStats()
        assert s.total_label_ops == 0
        assert not s.isolated_fast_path


class TestStreamStats:
    def test_record_classifies_kinds(self):
        stream = StreamStats()
        stream.record(UpdateStats(kind="insert", elapsed=0.1))
        stream.record(UpdateStats(kind="delete", elapsed=0.2))
        stream.record(UpdateStats(kind="insert_vertex"))
        stream.record(UpdateStats(kind="delete_vertex"))
        assert stream.updates == 4
        assert stream.insertions == 1
        assert stream.deletions == 1
        assert stream.vertex_ops == 2
        assert stream.accumulated_time == 0.3 or abs(stream.accumulated_time - 0.3) < 1e-12

    def test_net_entry_change(self):
        stream = StreamStats()
        stream.record(UpdateStats(kind="insert", inserted=5))
        stream.record(UpdateStats(kind="delete", removed=2))
        assert stream.net_entry_change == 3

    def test_per_update_history_kept(self):
        stream = StreamStats()
        for i in range(3):
            stream.record(UpdateStats(kind="insert", inserted=i))
        assert [s.inserted for s in stream.per_update] == [0, 1, 2]
