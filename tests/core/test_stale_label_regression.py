"""Regression: stale labels must not resurface after distance-raising updates.

IncSPC (and weight decreases) deliberately leave distance-overestimated
labels behind (Lemma 3.1) — queries minimize over hubs, so overestimates
stay dormant.  But a later deletion / weight increase can raise a true
distance back *up to* the stale value, at which point the stale count
surfaces in query answers unless the decremental repair removes the entry.

The paper gates DecUPDATE's removal phase on the hub being a common hub of
the deleted edge (H_ab); that gate assumes a tight index and misses stale
entries.  This repository runs the removal phase unconditionally (see
repro/core/decremental.py).  These tests pin both the original failing
sequence (found by randomized testing) and distilled scenarios.
"""

import random

from repro.core import build_spc_index, dec_spc, inc_spc
from repro.graph import random_weighted
from repro.verify import verify_espc, verify_espc_weighted
from repro.weighted import build_weighted_spc_index, decrease_weight, increase_weight


class TestWeightedRegression:
    def test_original_failing_sequence(self):
        """The exact weight-churn sequence that exposed the H_ab gate hole."""
        g = random_weighted(12, 24, max_weight=5, seed=3)
        index = build_weighted_spc_index(g)
        ops = [
            (6, 10, 2), (7, 9, 4), (7, 9, 5), (2, 10, 6), (3, 9, 6),
            (0, 1, 1), (1, 10, 3), (7, 10, 2), (2, 7, 6), (0, 4, 2),
        ]
        for u, v, new_w in ops:
            old = g.weight(u, v)
            if new_w < old:
                decrease_weight(g, index, u, v, new_w)
            elif new_w > old:
                increase_weight(g, index, u, v, new_w)
            assert verify_espc_weighted(g, index), f"after ({u},{v})->{new_w}"


class TestUnweightedStaleLabels:
    def test_insert_shortcut_then_remove_it(self):
        """Removing a shortcut restores distances; stale entries must not
        pollute the counts at the restored distance."""
        from repro.graph import path_graph

        g = path_graph(8)
        index = build_spc_index(g)
        baseline = {
            (s, t): index.query(s, t) for s in range(8) for t in range(8)
        }
        inc_spc(g, index, 0, 7)   # shortcut makes many labels stale
        inc_spc(g, index, 2, 6)   # more staleness
        dec_spc(g, index, 2, 6)   # distances pop back up
        dec_spc(g, index, 0, 7)
        for pair, expected in baseline.items():
            assert index.query(*pair) == expected
        assert verify_espc(g, index)

    def test_randomized_resurface_hunt(self):
        """Dense little graphs + aggressive insert/delete churn: the exact
        setting where stale entries meet rising distances."""
        for seed in range(25):
            rng = random.Random(seed)
            from repro.graph import erdos_renyi

            n = rng.randint(6, 12)
            g = erdos_renyi(n, rng.randint(n, 2 * n), seed=seed)
            index = build_spc_index(g)
            for step in range(16):
                if step % 2 == 0:
                    candidates = [
                        (u, v)
                        for u in range(n)
                        for v in range(u + 1, n)
                        if not g.has_edge(u, v)
                    ]
                    if not candidates:
                        continue
                    u, v = rng.choice(candidates)
                    inc_spc(g, index, u, v)
                else:
                    edges = sorted(g.edges())
                    if not edges:
                        continue
                    u, v = rng.choice(edges)
                    dec_spc(g, index, u, v)
                assert verify_espc(g, index), f"seed={seed} step={step}"
