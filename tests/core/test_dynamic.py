"""Unit tests for the DynamicSPC facade."""

import pytest

from repro.core import DynamicSPC, build_dynamic
from repro.exceptions import GraphError
from repro.graph import Graph, erdos_renyi, path_graph
from repro.verify import verify_espc
from repro.workloads import DeleteEdge, InsertEdge, hybrid_stream

INF = float("inf")


class TestFacadeBasics:
    def test_query_matches_docstring(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
        dyn = DynamicSPC(g)
        assert dyn.query(0, 2) == (2, 2)
        dyn.insert_edge(0, 2)
        assert dyn.query(0, 2) == (1, 1)

    def test_distance_count_helpers(self):
        dyn = DynamicSPC(path_graph(4))
        assert dyn.distance(0, 3) == 3
        assert dyn.count(0, 3) == 1

    def test_insert_edge_creates_missing_vertices(self):
        dyn = DynamicSPC(path_graph(3))
        dyn.insert_edge(2, 7)
        assert dyn.graph.has_vertex(7)
        assert dyn.query(0, 7) == (3, 1)
        assert dyn.check()

    def test_delete_edge(self):
        dyn = DynamicSPC(path_graph(4))
        dyn.delete_edge(1, 2)
        assert dyn.query(0, 3) == (INF, 0)


class TestVertexOperations:
    def test_insert_isolated_vertex(self):
        dyn = DynamicSPC(path_graph(3))
        stats = dyn.insert_vertex(9)
        assert stats.kind == "insert_vertex"
        assert dyn.query(9, 9) == (0, 1)
        assert dyn.query(0, 9) == (INF, 0)

    def test_insert_vertex_with_edges(self):
        dyn = DynamicSPC(path_graph(3))
        dyn.insert_vertex(9, edges=[0, 2])
        assert dyn.query(9, 1) == (2, 2)  # via 0 and via 2
        assert dyn.check()

    def test_delete_vertex(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        dyn = DynamicSPC(g)
        dyn.delete_vertex(2)
        assert not dyn.graph.has_vertex(2)
        assert dyn.query(0, 1) == (1, 1)
        assert dyn.query(0, 3) == (INF, 0)
        assert dyn.check()

    def test_delete_cut_vertex_of_star(self):
        from repro.graph import star_graph

        dyn = DynamicSPC(star_graph(6))
        dyn.delete_vertex(0)
        for u in range(1, 6):
            for v in range(u + 1, 6):
                assert dyn.query(u, v) == (INF, 0)

    def test_reinsert_deleted_vertex_id(self):
        dyn = DynamicSPC(path_graph(3))
        dyn.insert_vertex(5, edges=[0])
        dyn.delete_vertex(5)
        # Rank numbers are not recycled, but the id can return.
        dyn.insert_vertex(5, edges=[2])
        assert dyn.query(5, 0) == (3, 1)
        assert dyn.check()


class TestStreamsAndHistory:
    def test_apply_stream_records_history(self):
        g = erdos_renyi(15, 30, seed=4)
        dyn = DynamicSPC(g.copy())
        stream = hybrid_stream(g, insertions=6, deletions=2, seed=4)
        stats_list = dyn.apply_stream(stream)
        assert len(stats_list) == 8
        assert dyn.history.updates == 8
        assert dyn.history.insertions == 6
        assert dyn.history.deletions == 2
        assert dyn.history.accumulated_time > 0
        assert dyn.check()

    def test_apply_single_updates(self):
        dyn = DynamicSPC(path_graph(4))
        dyn.apply(InsertEdge(0, 3))
        assert dyn.query(0, 3) == (1, 1)
        dyn.apply(DeleteEdge(0, 3))
        assert dyn.query(0, 3) == (3, 1)

    def test_net_entry_change_tracking(self):
        dyn = DynamicSPC(path_graph(5))
        before = dyn.index.num_entries
        dyn.insert_edge(0, 4)
        after = dyn.index.num_entries
        assert dyn.history.net_entry_change == after - before

    def test_vertex_ops_do_not_double_count_history(self):
        # insert_vertex with 2 edges = 1 vertex marker + 2 edge inserts;
        # the history totals must equal the true index growth exactly.
        dyn = DynamicSPC(path_graph(4))
        before = dyn.index.num_entries
        stats = dyn.insert_vertex(9, edges=[0, 3])
        growth = dyn.index.num_entries - before
        assert dyn.history.vertex_ops == 1
        assert dyn.history.insertions == 2
        # The self-label added by add_vertex is not an update stat; label
        # ops recorded must match growth minus that one self-label.
        assert dyn.history.totals.net_entry_change == growth - 1
        # The returned aggregate covers both edge insertions.
        assert stats.inserted == dyn.history.totals.inserted


class TestRebuildPolicy:
    def test_manual_rebuild(self):
        dyn = DynamicSPC(path_graph(5))
        dyn.insert_edge(0, 4)
        elapsed = dyn.rebuild()
        assert elapsed > 0
        assert dyn.query(0, 4) == (1, 1)

    def test_lazy_rebuild_every_n(self):
        g = erdos_renyi(12, 20, seed=5)
        dyn = DynamicSPC(g, rebuild_every=3)
        count = 0
        for u in range(12):
            for v in range(u + 1, 12):
                if not dyn.graph.has_edge(u, v):
                    dyn.insert_edge(u, v)
                    count += 1
                if count >= 7:
                    break
            if count >= 7:
                break
        assert dyn._updates_since_rebuild < 3
        assert dyn.check()

    def test_build_dynamic_validates_graph(self):
        with pytest.raises(GraphError):
            build_dynamic(object())

    def test_build_dynamic_alias(self):
        dyn = build_dynamic(path_graph(3))
        assert isinstance(dyn, DynamicSPC)
