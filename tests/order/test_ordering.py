"""Unit tests for vertex orderings."""

import pytest

from repro.exceptions import OrderingError
from repro.graph import Graph, star_graph
from repro.order import VertexOrder, degree_order, make_order, natural_order, random_order


class TestVertexOrder:
    def test_rank_and_vertex(self):
        order = VertexOrder([5, 3, 9])
        assert order.rank(5) == 0
        assert order.rank(9) == 2
        assert order.vertex(1) == 3

    def test_higher_matches_paper_notation(self):
        order = VertexOrder([5, 3, 9])
        assert order.higher(5, 9)      # 5 <= 9 (5 ranks higher)
        assert not order.higher(9, 3)
        assert order.higher(3, 3)      # reflexive

    def test_duplicate_vertex_rejected(self):
        with pytest.raises(OrderingError):
            VertexOrder([1, 2, 1])

    def test_unknown_vertex(self):
        order = VertexOrder([0])
        with pytest.raises(OrderingError):
            order.rank(4)
        with pytest.raises(OrderingError):
            order.vertex(2)

    def test_append_gets_lowest_rank(self):
        order = VertexOrder([0, 1])
        r = order.append(7)
        assert r == 2
        assert order.rank(7) == 2
        assert order.rank(0) == 0  # existing ranks untouched

    def test_append_duplicate(self):
        order = VertexOrder([0])
        with pytest.raises(OrderingError):
            order.append(0)

    def test_iter_and_len(self):
        order = VertexOrder([2, 0, 1])
        assert list(order) == [2, 0, 1]
        assert len(order) == 3
        assert 0 in order and 9 not in order

    def test_rank_map_is_live(self):
        order = VertexOrder([0, 1])
        rank = order.rank_map()
        order.append(2)
        assert rank[2] == 2


class TestStrategies:
    def test_degree_order_puts_hub_first(self):
        g = star_graph(5)
        order = degree_order(g)
        assert order.vertex(0) == 0  # the center

    def test_degree_order_tie_break_by_id(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        order = degree_order(g)
        assert order.as_list() == [0, 1, 2, 3]

    def test_natural_order(self):
        g = Graph.from_edges([(5, 1), (3, 1)])
        assert natural_order(g).as_list() == [1, 3, 5]

    def test_random_order_deterministic(self):
        g = star_graph(10)
        a = random_order(g, seed=3)
        b = random_order(g, seed=3)
        assert a.as_list() == b.as_list()
        c = random_order(g, seed=4)
        assert a.as_list() != c.as_list()

    def test_make_order_explicit_list(self):
        g = Graph.from_edges([(0, 1)])
        order = make_order(g, [1, 0])
        assert order.rank(1) == 0

    def test_make_order_explicit_missing_vertex(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        with pytest.raises(OrderingError):
            make_order(g, [0, 1])

    def test_make_order_explicit_extra_vertex(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(OrderingError):
            make_order(g, [0, 1, 2])

    def test_make_order_unknown_strategy(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(OrderingError):
            make_order(g, "mystery")
