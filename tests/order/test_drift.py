"""Tests for the ordering-drift diagnostics (§6 lazy-rebuild support)."""

from repro.core import DynamicSPC
from repro.graph import Graph, erdos_renyi, star_graph
from repro.order import (
    degree_order,
    drift_report,
    random_order,
    rank_displacement,
    sampled_inversions,
)


class TestDriftMetrics:
    def test_fresh_degree_order_has_no_drift(self):
        g = erdos_renyi(40, 100, seed=1)
        order = degree_order(g)
        assert sampled_inversions(g, order, samples=2000) == 0.0
        assert rank_displacement(g, order) == 0.0

    def test_random_order_drifts_heavily(self):
        g = erdos_renyi(60, 140, seed=2)
        order = random_order(g, seed=3)
        inv = sampled_inversions(g, order, samples=3000)
        assert inv > 0.25
        assert rank_displacement(g, order) > 0.1

    def test_drift_grows_with_updates(self):
        # Freeze an order, then invert the degree structure: the former
        # star center loses everything, a former leaf becomes the hub.
        g = star_graph(12)
        order = degree_order(g)  # center 0 ranks first
        for leaf in range(2, 12):
            g.remove_edge(0, leaf)
            g.add_edge(1, leaf)
        # Only pairs with distinct degrees count: (1, x) for the 11 others,
        # of which exactly (0, 1) is inverted -> expected fraction 1/11.
        inv = sampled_inversions(g, order, samples=5000)
        assert 0.05 < inv < 0.15

    def test_report_shape(self):
        g = erdos_renyi(30, 70, seed=4)
        report = drift_report(g, degree_order(g))
        assert set(report) == {
            "rank_displacement", "sampled_inversions", "rebuild_recommended",
        }
        assert not report["rebuild_recommended"]

    def test_tiny_graphs(self):
        g = Graph()
        g.add_vertex(0)
        order = degree_order(g)
        assert sampled_inversions(g, order) == 0.0
        assert rank_displacement(Graph(), order) == 0.0


class TestDriftRebuildPolicy:
    def test_facade_drift_method(self):
        g = erdos_renyi(25, 50, seed=5)
        dyn = DynamicSPC(g)
        report = dyn.drift()
        assert report["sampled_inversions"] == 0.0

    def test_drift_triggered_rebuild(self):
        # Degree-inverting churn with an aggressive drift policy must
        # trigger at least one rebuild and keep answers exact.
        g = star_graph(14)
        dyn = DynamicSPC(
            g, rebuild_drift_threshold=0.05, drift_check_every=5,
        )
        for leaf in range(2, 12):
            dyn.delete_edge(0, leaf)
            dyn.insert_edge(1, leaf)
        assert dyn._updates_since_rebuild < 20  # a rebuild happened
        assert dyn.check()
