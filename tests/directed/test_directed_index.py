"""Unit tests for the directed SPC-Index: construction and queries."""

import pytest

from repro.directed import DirectedSPCIndex, build_directed_spc_index
from repro.graph import DiGraph, directed_scale_free, random_directed
from repro.order import VertexOrder
from repro.verify import verify_espc_directed

INF = float("inf")


class TestDirectedConstruction:
    def test_simple_path(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        index = build_directed_spc_index(g, strategy="natural")
        assert index.query(0, 2) == (2, 1)
        assert index.query(2, 0) == (INF, 0)

    def test_diamond_counts(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        index = build_directed_spc_index(g)
        assert index.query(0, 3) == (2, 2)
        assert index.query(3, 0) == (INF, 0)

    def test_cycle_asymmetry(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        index = build_directed_spc_index(g)
        assert index.query(0, 2) == (2, 1)
        assert index.query(2, 1) == (2, 1)

    def test_self_query(self):
        g = DiGraph.from_edges([(0, 1)])
        index = build_directed_spc_index(g)
        assert index.query(0, 0) == (0, 1)

    @pytest.mark.parametrize("seed", range(6))
    def test_espc_random_digraphs(self, seed):
        g = random_directed(20, 55, seed=seed)
        index = build_directed_spc_index(g)
        assert verify_espc_directed(g, index)

    def test_espc_scale_free(self):
        g = directed_scale_free(60, attach=2, seed=3)
        index = build_directed_spc_index(g)
        assert verify_espc_directed(g, index)

    def test_in_out_labels_distinct(self):
        g = DiGraph.from_edges([(0, 1)])
        index = build_directed_spc_index(g, strategy="natural")
        # 0 is a hub of L_in(1) (path 0 -> 1) but L_out(1) has no 0 entry
        # for the reverse direction.
        assert (0, 1, 1) in index.in_labels(1)
        assert all(h != 0 for h, _, _ in index.out_labels(1))


class TestDirectedIndexApi:
    def test_add_and_drop_vertex(self):
        index = DirectedSPCIndex(VertexOrder([0, 1]))
        r = index.add_vertex(5)
        assert r == 2
        assert index.query(5, 5) == (0, 1)
        index.drop_vertex_labels(5)
        from repro.exceptions import VertexNotFound

        with pytest.raises(VertexNotFound):
            index.query(5, 5)

    def test_size_accounting(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        index = build_directed_spc_index(g)
        assert index.size_bytes == 8 * index.num_entries
        assert index.num_entries >= 2 * 3  # at least the self-labels

    def test_pre_query_directions(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        index = build_directed_spc_index(g, strategy="natural")
        # Forward pre-query from the top-ranked hub sees no higher hubs.
        assert index.pre_query_forward(0, 2) == (INF, 0)
        d, _ = index.pre_query_forward(1, 2)
        assert d >= index.distance(1, 2)
