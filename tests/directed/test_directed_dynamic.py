"""Unit tests for directed IncSPC / DecSPC and the directed facade."""

import random

import pytest

from repro.directed import (
    DynamicDirectedSPC,
    build_directed_spc_index,
    dec_spc_directed,
    inc_spc_directed,
)
from repro.exceptions import EdgeNotFound
from repro.graph import DiGraph, random_directed
from repro.verify import verify_espc_directed

INF = float("inf")


class TestDirectedIncremental:
    def test_shortcut_arc(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        index = build_directed_spc_index(g)
        inc_spc_directed(g, index, 0, 3)
        assert index.query(0, 3) == (1, 1)
        assert verify_espc_directed(g, index)

    def test_tie_creating_arc(self):
        g = DiGraph.from_edges([(0, 1), (1, 3), (0, 2)])
        index = build_directed_spc_index(g)
        inc_spc_directed(g, index, 2, 3)
        assert index.query(0, 3) == (2, 2)
        assert verify_espc_directed(g, index)

    def test_reverse_arc_insertion(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        index = build_directed_spc_index(g)
        inc_spc_directed(g, index, 2, 0)  # close the cycle
        assert index.query(2, 1) == (2, 1)
        assert verify_espc_directed(g, index)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_arc_insertions(self, seed):
        rng = random.Random(seed)
        g = random_directed(15, 30, seed=seed)
        index = build_directed_spc_index(g)
        done = 0
        while done < 10:
            u, v = rng.randrange(15), rng.randrange(15)
            if u == v or g.has_edge(u, v):
                continue
            inc_spc_directed(g, index, u, v)
            done += 1
            assert verify_espc_directed(g, index), f"seed={seed} arc=({u},{v})"


class TestDirectedDecremental:
    def test_delete_only_path(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        index = build_directed_spc_index(g)
        dec_spc_directed(g, index, 1, 2)
        assert index.query(0, 2) == (INF, 0)
        assert verify_espc_directed(g, index)

    def test_delete_one_of_two_paths(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        index = build_directed_spc_index(g)
        dec_spc_directed(g, index, 1, 3)
        assert index.query(0, 3) == (2, 1)
        assert verify_espc_directed(g, index)

    def test_reroute_through_longer_path(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (2, 3), (3, 1)])
        index = build_directed_spc_index(g)
        dec_spc_directed(g, index, 0, 1)
        assert index.query(0, 1) == (3, 1)
        assert verify_espc_directed(g, index)

    def test_missing_arc_raises(self):
        g = DiGraph.from_edges([(0, 1)])
        index = build_directed_spc_index(g)
        with pytest.raises(EdgeNotFound):
            dec_spc_directed(g, index, 1, 0)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_arc_deletions(self, seed):
        rng = random.Random(100 + seed)
        g = random_directed(14, 40, seed=seed)
        index = build_directed_spc_index(g)
        arcs = sorted(g.edges())
        rng.shuffle(arcs)
        for u, v in arcs[:12]:
            dec_spc_directed(g, index, u, v)
            assert verify_espc_directed(g, index), f"seed={seed} arc=({u},{v})"


class TestDirectedFacade:
    def test_docstring_example(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        dyn = DynamicDirectedSPC(g)
        assert dyn.query(0, 2) == (2, 1)
        dyn.insert_edge(0, 2)
        assert dyn.query(0, 2) == (1, 1)

    def test_vertex_lifecycle(self):
        g = DiGraph.from_edges([(0, 1)])
        dyn = DynamicDirectedSPC(g)
        dyn.insert_vertex(5, out_edges=[0], in_edges=[1])
        assert dyn.query(5, 1) == (2, 1)
        assert dyn.query(0, 5) == (2, 1)
        dyn.delete_vertex(5)
        assert not dyn.graph.has_vertex(5)
        assert verify_espc_directed(dyn.graph, dyn.index)

    def test_history_and_rebuild(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        dyn = DynamicDirectedSPC(g)
        dyn.insert_edge(2, 0)
        dyn.delete_edge(2, 0)
        assert dyn.history.updates == 2
        assert dyn.rebuild() > 0
        assert verify_espc_directed(dyn.graph, dyn.index)

    def test_mixed_random_updates(self):
        rng = random.Random(9)
        g = random_directed(12, 25, seed=9)
        dyn = DynamicDirectedSPC(g)
        for step in range(20):
            if step % 2 == 0:
                while True:
                    u, v = rng.randrange(12), rng.randrange(12)
                    if u != v and not dyn.graph.has_edge(u, v):
                        dyn.insert_edge(u, v)
                        break
            else:
                u, v = rng.choice(sorted(dyn.graph.edges()))
                dyn.delete_edge(u, v)
            assert verify_espc_directed(dyn.graph, dyn.index), f"step {step}"
