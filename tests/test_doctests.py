"""Run every doctest embedded in the library's docstrings.

The usage examples in docstrings are part of the public documentation;
this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.startswith("repro.bench.__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"


def test_doctests_actually_cover_examples():
    # Guard against the parametrization silently collecting nothing.
    total_examples = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        for test in finder.find(module):
            total_examples += len(test.examples)
    assert total_examples >= 10
