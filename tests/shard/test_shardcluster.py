"""ShardedCluster end-to-end: config, correctness per backend, faults,
compaction, the 1/K memory goal and the strict shard loadgen contract."""

import os

import pytest

import repro
from repro.exceptions import AuditDivergenceError, ShardError
from repro.graph.directed import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.weighted import WeightedGraph
from repro.serve.service import JOURNAL_FILENAME
from repro.shard import ShardConfig, ShardedCluster, run_shard_loadgen, \
    shard_cluster
from repro.workloads import DeleteEdge, InsertEdge, SetWeight


class TestShardConfig:
    def test_needs_a_shard(self):
        with pytest.raises(ShardError, match="at least one shard"):
            ShardConfig(shards=0)

    def test_ring_needs_overlap(self):
        with pytest.raises(ShardError, match="ring_size"):
            ShardConfig(ring_size=1)

    def test_replace(self):
        cfg = ShardConfig().replace(shards=7)
        assert cfg.shards == 7 and cfg.partitioner == "balanced"


class TestShardedCluster:
    def test_journal_is_forced_on(self, tmp_path):
        g = erdos_renyi(10, 18, seed=0)
        with ShardedCluster(repro.open(g), str(tmp_path), shards=2) as sc:
            sc.submit(InsertEdge(0, 9))
            sc.sync()
        assert os.path.exists(str(tmp_path / JOURNAL_FILENAME))

    @pytest.mark.parametrize("partitioner", ["balanced", "range", "hash"])
    def test_matches_engine_across_partitioners(self, tmp_path, partitioner):
        g = erdos_renyi(24, 55, seed=3)
        engine = repro.open(g)
        with ShardedCluster(
            engine, str(tmp_path), shards=3, partitioner=partitioner
        ) as sc:
            sc.submit_many([InsertEdge(0, 20), DeleteEdge(0, 20)])
            sc.submit(InsertEdge(1, 17))
            sc.sync()
            for s in range(0, 24, 3):
                for t in range(1, 24, 5):
                    assert sc.query(s, t) == engine.query(s, t), (s, t)

    def test_directed_backend(self, tmp_path):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        engine = repro.open(g)
        with ShardedCluster(engine, str(tmp_path), shards=2) as sc:
            sc.submit(InsertEdge(0, 2))
            sc.sync()
            for s in range(4):
                for t in range(4):
                    assert sc.query(s, t) == engine.query(s, t)

    def test_weighted_backend(self, tmp_path):
        g = WeightedGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 5.0)]
        )
        engine = repro.open(g)
        with ShardedCluster(engine, str(tmp_path), shards=2) as sc:
            sc.submit(SetWeight(0, 3, 2.0))
            sc.sync()
            assert sc.query(0, 3) == engine.query(0, 3)

    def test_sd_backend_survives_rebuild_on_delete(self, tmp_path):
        g = erdos_renyi(14, 30, seed=8)
        engine = repro.open(g, backend="sd")
        with ShardedCluster(engine, str(tmp_path), shards=2) as sc:
            sc.submit(InsertEdge(0, 13))
            sc.sync()
            sc.submit(DeleteEdge(0, 13))  # SD deletes rebuild the index
            sc.sync()
            for s in range(0, 14, 2):
                for t in range(1, 14, 3):
                    assert sc.query(s, t) == engine.query(s, t)

    def test_compaction_rebootstraps_shards(self, tmp_path):
        g = erdos_renyi(16, 34, seed=2)
        engine = repro.open(g)
        with ShardedCluster(engine, str(tmp_path), shards=2) as sc:
            sc.submit(InsertEdge(0, 15))
            sc.sync()
            sc.checkpoint(truncate_wal=True)
            sc.submit(InsertEdge(1, 14))
            sc.sync()
            assert sc.query(1, 14) == engine.query(1, 14)

    def test_memory_splits_roughly_one_over_k(self, tmp_path):
        # The acceptance criterion in miniature: per-shard peak label
        # entries <= (1 + eps)/K of the unsharded index, eps = 0.35.
        g = erdos_renyi(60, 150, seed=7)
        engine = repro.open(g)
        shards = 4
        with ShardedCluster(engine, str(tmp_path), shards=shards) as sc:
            sc.sync()
            stats = sc.router.stats()["shards"]
            total = sum(s["entries"] for s in stats)
            bound = (1 + 0.35) / shards
            for s in stats:
                assert s["peak_entries"] <= bound * total, s

    def test_kill_then_restart_round_trip(self, tmp_path):
        g = erdos_renyi(12, 24, seed=1)
        engine = repro.open(g)
        with ShardedCluster(engine, str(tmp_path), shards=2) as sc:
            sc.sync()
            sc.kill_shard(0)
            with pytest.raises(ShardError):
                sc.query(0, 5)
            sc.submit(InsertEdge(0, 11))  # writes keep flowing while down
            sc.restart_shard(0)
            sc.sync()
            assert sc.query(0, 11) == engine.query(0, 11)

    def test_unknown_shard_id(self, tmp_path):
        g = erdos_renyi(8, 12, seed=0)
        with ShardedCluster(repro.open(g), str(tmp_path), shards=2) as sc:
            with pytest.raises(ShardError, match="no shard with id"):
                sc.kill_shard(5)

    def test_shard_cluster_convenience_accepts_graph(self, tmp_path):
        g = erdos_renyi(8, 14, seed=4)
        with shard_cluster(g, str(tmp_path), shards=2) as sc:
            sc.sync()
            assert sc.query(0, 1) is not None

    def test_stats_shape(self, tmp_path):
        g = erdos_renyi(8, 14, seed=4)
        with ShardedCluster(repro.open(g), str(tmp_path), shards=2) as sc:
            stats = sc.stats()
            assert set(stats) == {"primary", "partitioner", "router"}
            assert len(stats["router"]["shards"]) == 2


QUICK = dict(
    shards=3, readers=2, duration=0.6, n=90, m=260, churn=14,
    sample_rate=0.5, seed=0,
)


class TestShardLoadgen:
    def test_clean_run_audits_merged_answers(self):
        report = run_shard_loadgen(backend="core", kill=False, **QUICK)
        assert report["reads"] > 0
        assert report["auditor"]["audited"] > 0
        assert report["auditor"]["divergences"]["total"] == 0
        assert report["refusals"] == 0
        assert report["memory"]["within_bound"]
        assert report["shard_problems"] == []

    def test_kill_produces_refusals_then_recovers(self):
        # Longer run than QUICK: the kill lands at 0.35·T and the restart
        # at 0.65·T, so the post-restart assertions need enough tail for
        # the revived shard to re-bootstrap and serve under a loaded
        # single-core CI box.
        report = run_shard_loadgen(backend="core", kill=True,
                                   **{**QUICK, "duration": 1.5})
        assert report["fault_injection"].get("killed") == "shard-0"
        assert report["refusals"] > 0
        assert report["auditor"]["divergences"]["total"] == 0
        assert report["fault_injection"]["post_restart_reads"] > 0

    def test_memory_violation_fails_strict_runs(self):
        with pytest.raises(AuditDivergenceError, match="memory criterion"):
            run_shard_loadgen(backend="core", kill=False,
                              epsilon=-0.9, **QUICK)
