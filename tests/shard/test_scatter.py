"""Batch planner + ShardRouter: cuts, merges, taps and refusal semantics."""

import pytest

import repro
from repro.exceptions import ShardError, VertexNotFound
from repro.graph.generators import erdos_renyi
from repro.shard import ShardedCluster, gather_chunks, split_batch
from repro.workloads import InsertEdge


class TestSplitBatch:
    def test_empty(self):
        assert split_batch([], 4) == []

    def test_contiguous_cover_in_order(self):
        items = list(range(23))
        chunks = split_batch(items, 4)
        flat = [x for _off, chunk in chunks for x in chunk]
        assert flat == items
        offsets = [off for off, _chunk in chunks]
        assert offsets == sorted(offsets)
        assert all(
            items[off:off + len(chunk)] == chunk for off, chunk in chunks
        )

    def test_near_equal_sizes(self):
        sizes = [len(c) for _o, c in split_batch(list(range(10)), 3)]
        assert sorted(sizes) == [3, 3, 4]

    def test_min_chunk_caps_ways(self):
        chunks = split_batch(list(range(10)), 8, min_chunk=4)
        assert len(chunks) == 2

    def test_small_batch_degrades_to_one_chunk(self):
        assert len(split_batch([1, 2], 5, min_chunk=3)) == 1

    def test_never_empty_chunks(self):
        for n in range(1, 12):
            for ways in range(1, 6):
                assert all(
                    chunk for _o, chunk in split_batch(list(range(n)), ways)
                )


class TestGatherChunks:
    def worker(self, offset, chunk):
        return [x * 10 for x in chunk]

    @pytest.mark.parametrize("parallel", [False, True])
    def test_reassembles_in_submission_order(self, parallel):
        items = list(range(17))
        chunks = split_batch(items, 4)
        out = gather_chunks(chunks, self.worker, parallel=parallel)
        assert out == [x * 10 for x in items]

    def test_short_worker_result_is_an_error(self):
        chunks = split_batch(list(range(8)), 2)
        with pytest.raises(ValueError, match="answers for a chunk"):
            gather_chunks(chunks, lambda off, c: c[:-1], parallel=True)

    def test_worker_exception_fails_the_batch(self):
        def boom(offset, chunk):
            raise RuntimeError("sub-batch died")

        with pytest.raises(RuntimeError, match="sub-batch died"):
            gather_chunks(split_batch(list(range(8)), 2), boom, parallel=True)


@pytest.fixture()
def sharded(tmp_path):
    g = erdos_renyi(30, 70, seed=6)
    engine = repro.open(g)
    with ShardedCluster(
        engine, str(tmp_path), shards=3, parallel_threshold=8
    ) as sc:
        yield sc, engine


class TestShardRouter:
    def test_merged_answers_match_engine(self, sharded):
        sc, engine = sharded
        sc.sync()
        for s in range(0, 30, 5):
            for t in range(1, 30, 7):
                assert sc.query(s, t) == engine.query(s, t)

    def test_query_tagged_carries_cut_seq(self, sharded):
        sc, _engine = sharded
        sc.submit(InsertEdge(0, 29))
        seq = sc.sync()
        _answer, tag, target = sc.query_tagged(0, 29)
        assert tag == seq
        assert target == "shard-router"

    def test_query_many_single_cut_in_order(self, sharded):
        sc, engine = sharded
        sc.sync()
        pairs = [(s, t) for s in range(6) for t in range(6)]
        assert sc.query_many(pairs) == [engine.query(s, t) for s, t in pairs]

    def test_unknown_vertex_raises_vertex_not_found(self, sharded):
        sc, _engine = sharded
        sc.sync()
        with pytest.raises(VertexNotFound):
            sc.query(0, 999)

    def test_dead_shard_refuses_not_wrong(self, sharded):
        sc, _engine = sharded
        sc.sync()
        sc.kill_shard(1)
        with pytest.raises(ShardError, match="refusing"):
            sc.query(0, 5)
        stats = sc.router.stats()
        assert stats["refusals"] > 0

    def test_restart_recovers_service(self, sharded):
        sc, engine = sharded
        sc.kill_shard(1)
        sc.restart_shard(1)
        sc.sync()
        assert sc.query(0, 5) == engine.query(0, 5)

    def test_answer_tap_sees_merged_answers_with_cut_seq(self, sharded):
        sc, _engine = sharded
        seq = sc.sync()
        seen = []

        def tap(answered, tap_seq, target, epoch):
            seen.append((list(answered), tap_seq, target, epoch))

        sc.set_answer_tap(tap)
        answer = sc.query(2, 9)
        batch = sc.query_many([(0, 1), (1, 2)])
        assert seen[0] == ([((2, 9), answer)], seq, "shard-router", 0)
        answered, tap_seq, _target, _epoch = seen[1]
        assert [a for _pair, a in answered] == batch and tap_seq == seq

    def test_min_seq_floor_honoured(self, sharded):
        sc, _engine = sharded
        seq = sc.sync()
        cut = sc.router.acquire(min_seq=seq)
        assert cut.seq >= seq

    def test_unattainable_cut_refuses_after_timeout(self, sharded):
        sc, _engine = sharded
        seq = sc.sync()
        sc.router.wait_timeout = 0.05
        with pytest.raises(ShardError, match="refusing"):
            sc.router.acquire(min_seq=seq + 50)
