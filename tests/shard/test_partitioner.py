"""Hub partitioners: totality, disjointness and balance of the slices."""

import pytest

import repro
from repro.exceptions import ShardError
from repro.graph.generators import erdos_renyi
from repro.serve import ServeConfig, SPCService
from repro.serve.persist import load_checkpoint
from repro.serve.service import SNAPSHOT_FILENAME
from repro.shard import (
    HashPartitioner,
    RangePartitioner,
    balanced_boundaries,
    hub_weights_from_payload,
    make_partitioner,
)

#: ranks beyond any boundary — new vertices keep appending fresh ranks,
#: so every partitioner must stay total out here.
TAIL_RANKS = range(0, 2000, 17)


def assert_partition(p):
    """Every rank lands on exactly one shard; keep() agrees with shard_of."""
    keeps = [p.keep(i) for i in range(p.num_shards)]
    for rank in TAIL_RANKS:
        owner = p.shard_of(rank)
        assert 0 <= owner < p.num_shards
        owners = [i for i, keep in enumerate(keeps) if keep(rank)]
        assert owners == [owner]


class TestRangePartitioner:
    def test_boundaries_must_increase(self):
        with pytest.raises(ShardError, match="strictly increasing"):
            RangePartitioner([5, 5, 9])

    def test_first_boundary_must_be_positive(self):
        with pytest.raises(ShardError, match="> 0"):
            RangePartitioner([0, 4])

    def test_shard_of_maps_ranges(self):
        p = RangePartitioner([3, 7])
        assert [p.shard_of(r) for r in (0, 2, 3, 6, 7, 100)] == [
            0, 0, 1, 1, 2, 2,
        ]

    def test_last_range_open_ended(self):
        p = RangePartitioner([3, 7])
        assert p.shard_of(10 ** 9) == 2
        assert p.keep(2)(10 ** 9)

    def test_partition_property(self):
        assert_partition(RangePartitioner([13, 30, 54]))

    def test_equal_width(self):
        p = RangePartitioner.equal_width(100, 4)
        assert p.boundaries == [25, 50, 75]
        assert p.num_shards == 4

    def test_keep_rejects_bad_shard_id(self):
        with pytest.raises(ShardError, match="out of range"):
            RangePartitioner([3]).keep(2)

    def test_describe(self):
        assert RangePartitioner([3, 7]).describe() == {
            "kind": "range", "boundaries": [3, 7],
        }


class TestHashPartitioner:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ShardError, match=">= 1 shard"):
            HashPartitioner(0)

    def test_deterministic_per_seed(self):
        a, b = HashPartitioner(4, seed=9), HashPartitioner(4, seed=9)
        assert all(a.shard_of(r) == b.shard_of(r) for r in TAIL_RANKS)

    def test_partition_property(self):
        assert_partition(HashPartitioner(5, seed=2))

    def test_spreads_the_head(self):
        # The top-heavy head of the rank space must not pile on one shard.
        p = HashPartitioner(4)
        loads = [0] * 4
        for rank in range(64):
            loads[p.shard_of(rank)] += 1
        assert max(loads) <= 2 * (64 // 4)


class TestBalancedBoundaries:
    def test_cuts_at_entry_quantiles(self):
        # rank 0 holds half the mass: it must sit alone in shard 0.
        weights = {0: 50, 1: 10, 2: 10, 3: 10, 4: 20}
        cuts = balanced_boundaries(weights, 2)
        assert cuts == [1]

    def test_strictly_increasing_even_when_degenerate(self):
        cuts = balanced_boundaries({0: 7}, 4)
        assert cuts == sorted(set(cuts)) and len(cuts) == 3

    def test_empty_weights(self):
        assert balanced_boundaries({}, 3) == [1, 2]

    def test_single_shard_needs_no_cuts(self):
        assert balanced_boundaries({0: 5, 1: 5}, 1) == []


class TestMakePartitioner:
    @pytest.fixture()
    def payload(self, tmp_path):
        g = erdos_renyi(24, 50, seed=4)
        svc = SPCService(
            repro.open(g), ServeConfig(durability_dir=str(tmp_path))
        )
        svc.close()
        return load_checkpoint(str(tmp_path / SNAPSHOT_FILENAME))

    def test_unknown_strategy(self):
        with pytest.raises(ShardError, match="unknown partitioner"):
            make_partitioner("mystery", 4)

    def test_range_and_balanced_need_payload(self):
        with pytest.raises(ShardError, match="checkpoint payload"):
            make_partitioner("balanced", 4)

    def test_hash_needs_no_payload(self):
        assert make_partitioner("hash", 4).num_shards == 4

    @pytest.mark.parametrize("kind", ["range", "balanced", "hash"])
    def test_strategies_partition_real_checkpoints(self, kind, payload):
        p = make_partitioner(kind, 3, payload=payload)
        assert p.num_shards == 3
        assert_partition(p)

    def test_balanced_beats_equal_width_on_skew(self, payload):
        weights = hub_weights_from_payload(payload)
        total = sum(weights.values())

        def spread(p):
            loads = [0] * p.num_shards
            for rank, w in weights.items():
                loads[p.shard_of(rank)] += w
            return max(loads) / total

        balanced = make_partitioner("balanced", 3, payload=payload)
        width = make_partitioner("range", 3, payload=payload)
        # Hub labelings are top-heavy; holder-weighted cuts must not be
        # *worse* than equal-width ones, and should hold every shard well
        # under the whole index.
        assert spread(balanced) <= spread(width)
        assert spread(balanced) < 0.67
