"""The label-journal op decoder: corrupt feeds die loudly, valid ops pass."""

import pytest

from repro.exceptions import ShardError
from repro.shard import OP_LABEL, OP_NOP, OP_RESET, decode_label_op


class TestDecodeLabelOp:
    @pytest.mark.parametrize("op", [
        [OP_LABEL, 3, [[0, 1, 1]]],
        [OP_LABEL, "v", None],
        [OP_RESET, [[0, [[0, 0, 1]]], [1, []]]],
        [OP_RESET, []],
        [OP_NOP],
    ])
    def test_valid_ops_pass_through(self, op):
        assert decode_label_op(op) is op

    @pytest.mark.parametrize("op", [
        [],                      # the compaction marker is not an op
        ["mystery", 1],          # unknown tag
        "lb",                    # not a list
        None,
        [OP_LABEL, 3],           # lb without payload
        [OP_LABEL, 3, None, 4],  # lb with trailing junk
        [OP_RESET],              # reset without dump
        [OP_RESET, {"0": []}],   # reset dump must be a list
    ])
    def test_malformed_ops_raise(self, op):
        with pytest.raises(ShardError, match="malformed"):
            decode_label_op(op)
