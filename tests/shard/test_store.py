"""ShardStore accounting and the sliced two-pointer partial merge."""

from repro.audit import IDENTITY_PARTIAL, merge_partial_answers
from repro.shard import ShardStore, partial_answer

INF = float("inf")


class TestPartialAnswer:
    def test_empty_slice_is_identity(self):
        assert partial_answer([], [[0, 1, 1]]) == IDENTITY_PARTIAL

    def test_single_common_hub(self):
        assert partial_answer([[2, 1, 1]], [[2, 2, 3]]) == (3, 3)

    def test_counts_multiply_per_hub_and_sum_over_ties(self):
        s = [[0, 1, 2], [3, 2, 1]]
        t = [[0, 2, 3], [3, 1, 4]]
        # both hubs give distance 3: 2*3 + 1*4
        assert partial_answer(s, t) == (3, 10)

    def test_longer_paths_ignored(self):
        s = [[0, 1, 1], [5, 4, 9]]
        t = [[0, 1, 1], [5, 1, 9]]
        assert partial_answer(s, t) == (2, 1)

    def test_distance_only_family(self):
        assert partial_answer([[1, 2, 0]], [[1, 3, 0]], counts=False) == \
            (5, None)
        assert partial_answer([], [], counts=False) == (INF, None)

    def test_merging_disjoint_slices_recovers_full_answer(self):
        # Slicing the hub space and folding partials must equal the
        # unsliced merge — the router's core correctness claim in small.
        s = [[0, 1, 1], [2, 2, 2], [5, 1, 1]]
        t = [[0, 2, 1], [2, 1, 1], [5, 2, 3]]
        full = partial_answer(s, t)
        lo = partial_answer(
            [e for e in s if e[0] < 3], [e for e in t if e[0] < 3]
        )
        hi = partial_answer(
            [e for e in s if e[0] >= 3], [e for e in t if e[0] >= 3]
        )
        assert merge_partial_answers(lo, hi) == full


class TestShardStore:
    def test_put_and_replace_account_entries(self):
        store = ShardStore()
        store.put(0, [[0, 0, 1], [1, 1, 1]])
        store.put(1, [[1, 0, 1]])
        assert store.num_entries == 3
        store.put(0, [[0, 0, 1]])  # replacement, not accumulation
        assert store.num_entries == 2
        assert store.peak_entries == 3

    def test_drop_unknown_vertex_is_noop(self):
        store = ShardStore()
        store.put(0, [[0, 0, 1]])
        store.drop(7)
        store.drop(0)
        store.drop(0)
        assert store.num_entries == 0 and len(store) == 0

    def test_directed_counts_both_families(self):
        store = ShardStore(directed=True)
        store.put(0, {"in": [[0, 0, 1]], "out": [[0, 0, 1], [1, 1, 1]]})
        assert store.num_entries == 3

    def test_reset_carries_peak(self):
        store = ShardStore()
        store.put(0, [[0, 0, 1], [1, 1, 1], [2, 1, 1]])
        store.reset([(0, [[0, 0, 1]])])
        assert store.num_entries == 1
        assert store.peak_entries == 3

    def test_view_is_stable_snapshot(self):
        store = ShardStore()
        store.put(0, [[0, 0, 1]])
        view = store.view()
        store.drop(0)
        store.put(1, [[1, 0, 1]])
        assert 0 in view and 1 not in view

    def test_empty_slice_still_records_existence(self):
        store = ShardStore()
        store.put(5, [])
        assert 5 in store and store.num_entries == 0
