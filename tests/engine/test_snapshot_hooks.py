"""The backend protocol's snapshot/serialization hooks (the serve seam)."""

import pytest

from repro.engine import EngineConfig, SPCEngine, get_backend
from repro.exceptions import EngineError
from repro.graph.generators import erdos_renyi, random_directed, random_weighted

BACKEND_GRAPHS = [
    ("core", lambda: erdos_renyi(25, 50, seed=4)),
    ("directed", lambda: random_directed(25, 50, seed=4)),
    ("weighted", lambda: random_weighted(25, 50, seed=4)),
    ("sd", lambda: erdos_renyi(25, 50, seed=4)),
]


@pytest.mark.parametrize("backend,make", BACKEND_GRAPHS)
class TestSnapshotIndex:
    def test_copy_answers_identically(self, backend, make):
        engine = SPCEngine(make(), config=EngineConfig(backend=backend))
        copy = engine.backend.snapshot_index()
        vs = sorted(engine.graph.vertices())
        for s in vs[:6]:
            for t in vs[-6:]:
                assert copy.query(s, t) == engine.index.query(s, t)

    def test_copy_is_independent_of_live_updates(self, backend, make):
        engine = SPCEngine(make(), config=EngineConfig(backend=backend))
        copy = engine.backend.snapshot_index()
        vs = sorted(engine.graph.vertices())
        pairs = [(s, t) for s in vs[:6] for t in vs[-6:]]
        before = [copy.query(s, t) for s, t in pairs]
        from repro.workloads import random_insertions

        for upd in random_insertions(engine.graph, 4, seed=6):
            engine.insert_edge(upd.u, upd.v, upd.weight)
        assert [copy.query(s, t) for s, t in pairs] == before


@pytest.mark.parametrize("backend,make", BACKEND_GRAPHS)
class TestIndexSerializationHooks:
    def test_to_dict_from_dict_roundtrip(self, backend, make):
        engine = SPCEngine(make(), config=EngineConfig(backend=backend))
        payload = engine.backend.index_to_dict()
        clone = get_backend(backend).index_from_dict(payload)
        vs = sorted(engine.graph.vertices())
        for s in vs[:6]:
            for t in vs[-6:]:
                assert clone.query(s, t) == engine.index.query(s, t)


class TestDefaults:
    def test_index_type_declared_by_builtins(self):
        for name in ("core", "directed", "weighted"):
            assert get_backend(name).index_type is not None

    def test_missing_index_type_fails_loudly(self):
        from repro.engine.backends import SPCBackend

        class Bare(SPCBackend):
            name = "bare"

            def build_index(self):
                raise NotImplementedError

            def insert_edge(self, a, b, weight=None):
                raise NotImplementedError

            def delete_edge(self, a, b):
                raise NotImplementedError

            def verify(self, sample_pairs=None, seed=0):
                raise NotImplementedError

        with pytest.raises(EngineError, match="index_type"):
            Bare.index_from_dict({})

    def test_batch_hooks_default_noop(self, paper_graph):
        import repro

        engine = repro.open(paper_graph)
        engine.backend.begin_update_batch()
        engine.backend.end_update_batch()
        assert engine.query(0, 4) == (3, 3)
