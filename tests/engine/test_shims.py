"""The legacy facades survive as deprecation shims over the engine."""

import warnings

import pytest

from repro.core import DynamicSPC, build_dynamic
from repro.directed import DynamicDirectedSPC
from repro.engine import SPCEngine
from repro.graph import DiGraph, Graph, WeightedGraph, path_graph
from repro.weighted import DynamicWeightedSPC

INF = float("inf")


class TestDeprecationWarnings:
    def test_dynamic_spc_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.open"):
            DynamicSPC(path_graph(3))

    def test_dynamic_directed_spc_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.open"):
            DynamicDirectedSPC(DiGraph.from_edges([(0, 1)]))

    def test_dynamic_weighted_spc_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.open"):
            DynamicWeightedSPC(WeightedGraph.from_edges([(0, 1, 2)]))

    def test_build_dynamic_warns(self):
        with pytest.warns(DeprecationWarning):
            build_dynamic(path_graph(3))


def _quiet(ctor, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return ctor(*args, **kwargs)


class TestShimsAreEngines:
    def test_shims_subclass_spc_engine(self):
        assert issubclass(DynamicSPC, SPCEngine)
        assert issubclass(DynamicDirectedSPC, SPCEngine)
        assert issubclass(DynamicWeightedSPC, SPCEngine)

    def test_shims_pin_their_backend(self):
        assert _quiet(DynamicSPC, path_graph(3)).backend_name == "core"
        assert _quiet(
            DynamicDirectedSPC, DiGraph.from_edges([(0, 1)])
        ).backend_name == "directed"
        assert _quiet(
            DynamicWeightedSPC, WeightedGraph.from_edges([(0, 1, 2)])
        ).backend_name == "weighted"

    def test_shims_do_not_cache_queries(self):
        # Legacy callers may mutate graph+index outside the facade, so the
        # shims must keep reading through to the index on every query.
        assert _quiet(DynamicSPC, path_graph(3)).cache_info() is None


class TestLegacyBehaviorPreserved:
    def test_core_legacy_kwargs_roundtrip(self):
        dyn = _quiet(DynamicSPC, path_graph(6), strategy="degree",
                     rebuild_every=3, use_isolated_fast_path=False,
                     drift_check_every=10)
        assert dyn.config.rebuild_every == 3
        assert dyn.config.use_isolated_fast_path is False
        dyn.insert_edge(0, 5)
        assert dyn.query(0, 5) == (1, 1)
        assert dyn.history.updates == 1

    def test_directed_insert_vertex_keeps_out_in_signature(self):
        dyn = _quiet(DynamicDirectedSPC, DiGraph.from_edges([(0, 1), (1, 2)]))
        dyn.insert_vertex(9, out_edges=[0], in_edges=[2])
        assert dyn.query(2, 0) == (2, 1)  # 2 -> 9 -> 0
        assert dyn.check()

    def test_weighted_insert_edge_requires_weight_positionally(self):
        dyn = _quiet(DynamicWeightedSPC,
                     WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2)]))
        with pytest.raises(TypeError):
            dyn.insert_edge(0, 2)  # legacy signature: weight is mandatory
        dyn.insert_edge(0, 2, 3)
        assert dyn.query(0, 2) == (3, 1)

    def test_apply_batch_tuple_shape(self):
        from repro.workloads import DeleteEdge, InsertEdge

        dyn = _quiet(DynamicSPC, path_graph(4))
        stats, cancelled = dyn.apply_batch(
            [InsertEdge(0, 3), DeleteEdge(0, 3)])
        assert stats == [] and cancelled == 2

    def test_reprs_keep_legacy_class_names(self):
        assert repr(_quiet(DynamicSPC, path_graph(3))).startswith("DynamicSPC(")
        assert repr(
            _quiet(DynamicDirectedSPC, DiGraph.from_edges([(0, 1)]))
        ).startswith("DynamicDirectedSPC(")
        assert repr(
            _quiet(DynamicWeightedSPC, WeightedGraph.from_edges([(0, 1, 1)]))
        ).startswith("DynamicWeightedSPC(")

    def test_old_imports_still_resolve_from_repro(self):
        import repro

        assert repro.DynamicSPC is DynamicSPC
        assert repro.build_dynamic is build_dynamic
        from repro.core.dynamic import DynamicSPC as from_module

        assert from_module is DynamicSPC
