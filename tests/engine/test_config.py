"""EngineConfig: defaults, validation, replace()."""

import pytest

from repro.engine import EngineConfig
from repro.exceptions import EngineError, ReproError


class TestDefaults:
    def test_default_values(self):
        cfg = EngineConfig()
        assert cfg.backend is None
        assert cfg.strategy == "degree"
        assert cfg.rebuild_every is None
        assert cfg.rebuild_drift_threshold is None
        assert cfg.drift_check_every == 50
        assert cfg.use_isolated_fast_path is True
        assert cfg.coalesce_batches is True
        assert cfg.cache_size == 1024

    def test_frozen(self):
        cfg = EngineConfig()
        with pytest.raises(AttributeError):
            cfg.cache_size = 0

    def test_replace_returns_new_config(self):
        cfg = EngineConfig()
        patched = cfg.replace(cache_size=0, rebuild_every=10)
        assert patched.cache_size == 0
        assert patched.rebuild_every == 10
        assert cfg.cache_size == 1024  # original untouched


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rebuild_every": 0},
        {"rebuild_every": -5},
        {"rebuild_drift_threshold": -0.1},
        {"rebuild_drift_threshold": 1.5},
        {"drift_check_every": 0},
        {"cache_size": -1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(EngineError):
            EngineConfig(**kwargs)

    def test_replace_revalidates(self):
        with pytest.raises(EngineError):
            EngineConfig().replace(cache_size=-3)

    def test_engine_error_is_repro_error(self):
        assert issubclass(EngineError, ReproError)
