"""Backend registry: auto-selection, lookup, third-party registration."""

import pytest

import repro
from repro.engine import (
    SPCBackend,
    available_backends,
    backend_for_graph,
    get_backend,
    register_backend,
)
from repro.engine.backends import _REGISTRY
from repro.exceptions import EngineError
from repro.graph import DiGraph, Graph, WeightedGraph


class TestAutoSelection:
    def test_graph_selects_core(self):
        assert backend_for_graph(Graph()).name == "core"

    def test_digraph_selects_directed(self):
        assert backend_for_graph(DiGraph()).name == "directed"

    def test_weighted_graph_selects_weighted(self):
        assert backend_for_graph(WeightedGraph()).name == "weighted"

    def test_unknown_graph_type_raises(self):
        with pytest.raises(EngineError):
            backend_for_graph(object())

    def test_open_backend_names(self):
        assert repro.open(Graph.from_edges([(0, 1)])).backend_name == "core"
        assert repro.open(DiGraph.from_edges([(0, 1)])).backend_name == "directed"
        assert (
            repro.open(WeightedGraph.from_edges([(0, 1, 2)])).backend_name
            == "weighted"
        )


class TestLookup:
    def test_get_backend_by_name(self):
        assert get_backend("core").name == "core"

    def test_get_backend_unknown_name(self):
        with pytest.raises(EngineError):
            get_backend("sharded")

    def test_available_backends_lists_builtins(self):
        listing = available_backends()
        assert listing["core"] == "Graph"
        assert listing["directed"] == "DiGraph"
        assert listing["weighted"] == "WeightedGraph"

    def test_explicit_backend_in_config_overrides_autoselection(self):
        engine = repro.open(Graph.from_edges([(0, 1)]), backend="core")
        assert engine.backend_name == "core"


class TestRegistration:
    def test_register_requires_backend_subclass(self):
        with pytest.raises(EngineError):
            register_backend(object)

    def test_register_requires_name_and_graph_type(self):
        class Anonymous(SPCBackend):
            def build_index(self):
                raise NotImplementedError

            def insert_edge(self, a, b, weight=None):
                raise NotImplementedError

            def delete_edge(self, a, b):
                raise NotImplementedError

            def verify(self, sample_pairs=None, seed=0):
                raise NotImplementedError

        with pytest.raises(EngineError):
            register_backend(Anonymous)

    def test_custom_backend_for_graph_subclass_wins_on_exact_type(self):
        from repro.engine.adapters import CoreBackend

        class TaggedGraph(Graph):
            pass

        class TaggedBackend(CoreBackend):
            name = "tagged"
            graph_type = TaggedGraph

        register_backend(TaggedBackend)
        try:
            assert backend_for_graph(TaggedGraph()).name == "tagged"
            # plain graphs are untouched by the new registration
            assert backend_for_graph(Graph()).name == "core"
            engine = repro.open(TaggedGraph.from_edges([(0, 1), (1, 2)]))
            assert engine.backend_name == "tagged"
            assert engine.query(0, 2) == (2, 1)
        finally:
            _REGISTRY.pop("tagged", None)
