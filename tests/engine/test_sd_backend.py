"""The SD (distance-only) backend: explicit opt-in, (sd, None) answers."""

import pytest

import repro
from repro.engine import available_backends, get_backend
from repro.exceptions import EdgeNotFound, EngineError, IndexCorruption
from repro.graph.generators import erdos_renyi, path_graph
from repro.sd import SDIndex


@pytest.fixture
def sd_engine():
    return repro.open(path_graph(5), backend="sd")


class TestSelection:
    def test_registered(self):
        assert available_backends()["sd"] == "Graph"
        assert get_backend("sd").name == "sd"

    def test_core_still_wins_auto_selection(self):
        assert repro.open(path_graph(3)).backend_name == "core"

    def test_explicit_opt_in(self, sd_engine):
        assert sd_engine.backend_name == "sd"
        assert isinstance(sd_engine.index, SDIndex)


class TestServing:
    def test_distances_no_counts(self, sd_engine):
        assert sd_engine.query(0, 4) == (4, None)
        assert sd_engine.query(2, 2) == (0, None)
        assert sd_engine.distance(0, 3) == 3
        assert sd_engine.count(0, 3) is None

    def test_disconnected(self):
        g = repro.Graph.from_edges([(0, 1)], vertices=[2])
        engine = repro.open(g, backend="sd")
        assert engine.query(0, 2) == (float("inf"), None)

    def test_query_many_matches_query(self):
        g = erdos_renyi(30, 60, seed=5)
        engine = repro.open(g, backend="sd")
        vs = sorted(g.vertices())
        pairs = [(s, t) for s in vs[:3] for t in vs]
        assert engine.query_many(pairs) == [engine.query(s, t) for s, t in pairs]

    def test_matches_core_distances(self):
        g = erdos_renyi(25, 50, seed=9)
        core = repro.open(g.copy())
        sd = repro.open(g.copy(), backend="sd")
        for s in sorted(g.vertices())[:5]:
            for t in g.vertices():
                assert sd.distance(s, t) == core.distance(s, t)


class TestMaintenance:
    def test_insert_edge_updates_distances(self, sd_engine):
        sd_engine.insert_edge(0, 4)
        assert sd_engine.query(0, 4) == (1, None)
        assert sd_engine.check()

    def test_insert_creates_missing_vertex(self, sd_engine):
        sd_engine.insert_edge(4, 99)
        assert sd_engine.query(0, 99) == (5, None)

    def test_delete_edge_rebuilds(self, sd_engine):
        sd_engine.delete_edge(2, 3)
        assert sd_engine.query(0, 4) == (float("inf"), None)
        assert sd_engine.check()

    def test_delete_missing_edge_raises(self, sd_engine):
        with pytest.raises(EdgeNotFound):
            sd_engine.delete_edge(0, 4)

    def test_rejects_weights(self, sd_engine):
        with pytest.raises(EngineError):
            sd_engine.insert_edge(0, 2, weight=3)

    def test_vertex_lifecycle(self, sd_engine):
        sd_engine.insert_vertex(10, edges=(0,))
        assert sd_engine.query(10, 4) == (5, None)
        sd_engine.delete_vertex(10)
        assert 10 not in sd_engine.graph
        assert sd_engine.check()

    def test_delete_vertex_rebuilds_once(self, sd_engine, monkeypatch):
        from repro.engine.adapters import SDBackend

        builds = []
        original = SDBackend.build_index
        monkeypatch.setattr(
            SDBackend, "build_index",
            lambda self: builds.append(1) or original(self),
        )
        sd_engine.insert_vertex(10, edges=(0, 2, 4))
        builds.clear()
        sd_engine.delete_vertex(10)  # degree 3, but one rebuild only
        assert len(builds) == 1
        assert sd_engine.query(0, 4) == (4, None)
        assert sd_engine.check()

    def test_stream_stays_correct(self):
        g = erdos_renyi(20, 35, seed=3)
        engine = repro.open(g, backend="sd")
        edges = sorted(engine.graph.edges())
        engine.delete_edge(*edges[0])
        engine.insert_edge(*edges[0])
        engine.delete_edge(*edges[1])
        assert engine.check()
        assert engine.check_invariants()


class TestDropVertexLabels:
    def test_drop_purges_dangling_hub_references(self):
        from repro.graph.generators import path_graph as pg
        from repro.sd import build_sd_index

        g = pg(3)  # 0 - 1 - 2; vertex 1 is the shared hub
        index = build_sd_index(g, order=[1, 0, 2])
        g.remove_edge(0, 1)
        g.remove_edge(1, 2)
        g.remove_vertex(1)
        index.drop_vertex_labels(1)
        assert index.distance(0, 2) == float("inf")
        r1 = 0  # rank of the dropped hub under the explicit order
        for v in (0, 2):
            assert r1 not in index.label_arrays(v)[0]


class TestInvariants:
    def test_check_invariants_passes(self, sd_engine):
        assert sd_engine.check_invariants()

    def test_check_invariants_catches_corruption(self, sd_engine):
        hubs, dists = sd_engine.index.label_arrays(4)
        dists[0] = -1
        with pytest.raises(IndexCorruption):
            sd_engine.check_invariants()


class TestBatchedRebuild:
    """config.sd_defer_rebuilds: one rebuild per drained batch of deletes."""

    def test_delete_batch_rebuilds_once(self):
        engine = repro.open(erdos_renyi(20, 40, seed=2), backend="sd")
        edges = sorted(engine.graph.edges())[:5]
        before = engine.backend.rebuild_count
        from repro.workloads import DeleteEdge

        stats, _ = engine.apply_batch([DeleteEdge(u, v) for u, v in edges])
        assert len(stats) == 5
        assert engine.backend.rebuild_count == before + 1
        assert engine.check()

    def test_insert_after_deferred_delete_flushes_first(self):
        engine = repro.open(path_graph(6), backend="sd")
        from repro.workloads import DeleteEdge, InsertEdge

        before = engine.backend.rebuild_count
        # delete 2-3 (deferred), then insert 0-5: inc_sd must repair a
        # *current* index, so the pending rebuild flushes before it runs.
        engine.apply_batch([DeleteEdge(2, 3), InsertEdge(0, 5)],
                           coalesce=False)
        assert engine.backend.rebuild_count == before + 1
        assert engine.query(2, 3) == (5, None)  # 2-1-0-5-4-3
        assert engine.check()

    def test_knob_off_rebuilds_per_delete(self):
        engine = repro.open(erdos_renyi(20, 40, seed=2), backend="sd",
                            sd_defer_rebuilds=False)
        edges = sorted(engine.graph.edges())[:4]
        before = engine.backend.rebuild_count
        from repro.workloads import DeleteEdge

        engine.apply_batch([DeleteEdge(u, v) for u, v in edges])
        assert engine.backend.rebuild_count == before + 4
        assert engine.check()

    def test_single_delete_outside_batch_rebuilds_immediately(self, sd_engine):
        before = sd_engine.backend.rebuild_count
        sd_engine.delete_edge(2, 3)
        assert sd_engine.backend.rebuild_count == before + 1
        assert sd_engine.query(0, 4) == (float("inf"), None)

    def test_vertex_removal_batch_rebuilds_once(self):
        engine = repro.open(erdos_renyi(20, 40, seed=2), backend="sd")
        from repro.workloads import DeleteVertex

        victims = sorted(engine.graph.vertices())[:3]
        before = engine.backend.rebuild_count
        engine.apply_stream([DeleteVertex(v) for v in victims])
        assert engine.backend.rebuild_count == before + 1
        for v in victims:
            assert v not in engine.graph
        assert engine.check()
