"""SPCEngine: correctness across backends, caching, batching, policies."""

import random

import pytest

import repro
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import EngineError
from repro.graph import DiGraph, Graph, WeightedGraph, erdos_renyi, path_graph
from repro.traversal.bfs import bfs_counting_sssp, directed_bfs_counting_sssp
from repro.traversal.dijkstra import dijkstra_counting_sssp
from repro.workloads import DeleteEdge, InsertEdge, SetWeight, hybrid_stream

INF = float("inf")


def ground_truth(graph, s, t, sssp):
    if s == t:
        return (0, 1)
    dist, count = sssp(graph, s)
    return (dist.get(t, INF), count.get(t, 0))


class TestCorrectnessAcrossBackends:
    """repro.open works for all three graph families, and answers match a
    fresh BFS/Dijkstra counting ground truth before and after a mixed
    insert/delete stream (the acceptance criterion)."""

    def test_core_backend_mixed_stream(self):
        rng = random.Random(3)
        g = erdos_renyi(18, 36, seed=3)
        engine = repro.open(g.copy())
        vertices = sorted(g.vertices())
        pairs = [tuple(rng.sample(vertices, 2)) for _ in range(40)]
        for s, t in pairs:
            assert engine.query(s, t) == ground_truth(
                engine.graph, s, t, bfs_counting_sssp)
        for upd in hybrid_stream(g, insertions=8, deletions=3, seed=3):
            engine.apply(upd)
        for s, t in pairs:  # repeat traffic: second pass is served hot
            assert engine.query(s, t) == ground_truth(
                engine.graph, s, t, bfs_counting_sssp)
            assert engine.query(s, t) == ground_truth(
                engine.graph, s, t, bfs_counting_sssp)

    def test_directed_backend_mixed_stream(self):
        g = DiGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 5), (5, 2), (0, 5)]
        )
        engine = repro.open(g)
        assert engine.backend_name == "directed"
        stream = [
            InsertEdge(2, 4), DeleteEdge(1, 2), InsertEdge(5, 1),
            DeleteEdge(0, 5), InsertEdge(3, 5),
        ]
        for upd in stream:
            engine.apply(upd)
        for s in sorted(engine.graph.vertices()):
            for t in sorted(engine.graph.vertices()):
                assert engine.query(s, t) == ground_truth(
                    engine.graph, s, t, directed_bfs_counting_sssp)
                assert engine.query(s, t) == ground_truth(
                    engine.graph, s, t, directed_bfs_counting_sssp)

    def test_weighted_backend_mixed_stream(self):
        g = WeightedGraph.from_edges(
            [(0, 1, 2), (1, 2, 2), (0, 2, 5), (2, 3, 1), (1, 3, 4), (3, 4, 2)]
        )
        engine = repro.open(g)
        assert engine.backend_name == "weighted"
        engine.insert_edge(0, 4, 7)
        engine.delete_edge(1, 3)
        engine.set_weight(0, 2, 4)
        for s in sorted(engine.graph.vertices()):
            for t in sorted(engine.graph.vertices()):
                assert engine.query(s, t) == ground_truth(
                    engine.graph, s, t, dijkstra_counting_sssp)
                assert engine.query(s, t) == ground_truth(
                    engine.graph, s, t, dijkstra_counting_sssp)

    def test_check_runs_on_every_backend(self):
        assert repro.open(path_graph(5)).check()
        assert repro.open(DiGraph.from_edges([(0, 1), (1, 2)])).check()
        assert repro.open(WeightedGraph.from_edges([(0, 1, 3)])).check()

    def test_vertex_churn_core(self):
        engine = repro.open(path_graph(4))
        engine.insert_vertex(9, edges=[0, 3])
        assert engine.query(9, 1) == (2, 1)
        engine.delete_vertex(9)
        assert engine.query(0, 3) == (3, 1)
        assert engine.check()

    def test_vertex_churn_directed(self):
        engine = repro.open(DiGraph.from_edges([(0, 1), (1, 2)]))
        engine.insert_vertex(9, edges=[0], in_edges=[2])
        assert engine.query(2, 1) == (3, 1)  # 2 -> 9 -> 0 -> 1
        engine.delete_vertex(9)
        assert engine.query(2, 1) == (INF, 0)
        assert engine.check()

    def test_vertex_churn_weighted(self):
        engine = repro.open(WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2)]))
        engine.insert_vertex(9, edges=[(0, 1), (2, 1)])
        assert engine.query(0, 2) == (2, 1)  # via 9, beats 0-1-2 (cost 4)
        assert engine.check()

    def test_in_edges_rejected_on_undirected_backends(self):
        with pytest.raises(EngineError):
            repro.open(path_graph(3)).insert_vertex(9, in_edges=[0])
        with pytest.raises(EngineError):
            repro.open(WeightedGraph.from_edges([(0, 1, 1)])).insert_vertex(
                9, in_edges=[0])


class TestQueryMany:
    def test_matches_per_pair_query(self):
        g = erdos_renyi(16, 32, seed=9)
        engine = repro.open(g)
        uncached = repro.open(g.copy(), cache_size=0)
        vertices = sorted(g.vertices())
        rng = random.Random(9)
        pairs = [tuple(rng.sample(vertices, 2)) for _ in range(50)]
        pairs += pairs[:10]  # duplicates exercise the cache path
        assert engine.query_many(pairs) == [uncached.query(s, t) for s, t in pairs]

    def test_empty_batch(self):
        assert repro.open(path_graph(3)).query_many([]) == []


class TestQueryCache:
    def test_repeat_queries_hit_the_cache(self):
        engine = repro.open(path_graph(6))
        engine.query(0, 5)
        engine.query(0, 5)
        engine.query(5, 0)  # symmetric key on undirected backends
        info = engine.cache_info()
        assert info["hits"] == 2
        assert info["misses"] == 1

    def test_directed_cache_keys_are_asymmetric(self):
        engine = repro.open(DiGraph.from_edges([(0, 1)]))
        assert engine.query(0, 1) == (1, 1)
        assert engine.query(1, 0) == (INF, 0)

    def test_no_stale_answers_after_insert_edge(self):
        engine = repro.open(path_graph(4))
        assert engine.query(0, 3) == (3, 1)
        engine.insert_edge(0, 3)
        assert engine.query(0, 3) == (1, 1)

    def test_no_stale_answers_after_delete_edge(self):
        engine = repro.open(path_graph(4))
        assert engine.query(0, 3) == (3, 1)
        engine.delete_edge(2, 3)
        assert engine.query(0, 3) == (INF, 0)

    def test_no_stale_answers_after_apply_batch(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        engine = repro.open(g)
        assert engine.query(0, 3) == (3, 1)
        engine.apply_batch([InsertEdge(0, 3), DeleteEdge(1, 2)])
        assert engine.query(0, 3) == (1, 1)
        assert engine.query(1, 2) == (3, 1)  # now the long way: 1-0-3-2

    def test_no_stale_answers_after_set_weight(self):
        engine = repro.open(WeightedGraph.from_edges(
            [(0, 1, 2), (1, 2, 2), (0, 2, 5)]))
        assert engine.query(0, 2) == (4, 1)
        engine.set_weight(0, 2, 4)
        assert engine.query(0, 2) == (4, 2)

    def test_no_stale_answers_after_rebuild(self):
        engine = repro.open(path_graph(4))
        engine.query(0, 3)
        assert engine.rebuild() > 0
        assert engine.query(0, 3) == (3, 1)

    def test_cache_disabled_by_config(self):
        engine = repro.open(path_graph(3), cache_size=0)
        engine.query(0, 2)
        assert engine.cache_info() is None

    def test_epoch_advances_per_mutation(self):
        engine = repro.open(path_graph(4))
        e0 = engine.epoch
        engine.insert_edge(0, 2)
        engine.delete_edge(0, 2)
        assert engine.epoch == e0 + 2


class TestApplyBatch:
    def test_coalesces_churn_on_every_backend(self):
        # undirected
        engine = repro.open(path_graph(4))
        stats, cancelled = engine.apply_batch(
            [InsertEdge(0, 3), DeleteEdge(0, 3), DeleteEdge(1, 2),
             InsertEdge(1, 2)])
        assert stats == [] and cancelled == 4
        # directed: (0, 1) and (1, 0) are distinct arcs, no false cancel
        dengine = repro.open(DiGraph.from_edges([(0, 1), (1, 2)]))
        dstats, dcancelled = dengine.apply_batch(
            [InsertEdge(1, 0), DeleteEdge(0, 1)])
        assert len(dstats) == 2 and dcancelled == 0
        assert dengine.query(1, 0) == (1, 1)
        assert dengine.query(0, 2) == (INF, 0)  # the 0 -> 1 arc is gone
        # weighted: delete + reinsert at a new weight nets to set_weight
        wengine = repro.open(WeightedGraph.from_edges([(0, 1, 5), (1, 2, 1)]))
        wstats, wcancelled = wengine.apply_batch(
            [DeleteEdge(0, 1), InsertEdge(0, 1, weight=2)])
        assert len(wstats) == 1 and wcancelled == 1
        assert wengine.graph.weight(0, 1) == 2
        assert wengine.query(0, 2) == (3, 1)
        assert wengine.check()

    def test_weighted_batch_set_weight_op(self):
        engine = repro.open(WeightedGraph.from_edges([(0, 1, 5), (1, 2, 1)]))
        stats, cancelled = engine.apply_batch([SetWeight(0, 1, 3)])
        assert len(stats) == 1 and cancelled == 0
        assert engine.graph.weight(0, 1) == 3

    def test_coalesce_opt_out(self):
        engine = repro.open(path_graph(4))
        stats, cancelled = engine.apply_batch(
            [InsertEdge(0, 3), DeleteEdge(0, 3)], coalesce=False)
        assert len(stats) == 2 and cancelled == 0
        cfg_engine = repro.open(path_graph(4), coalesce_batches=False)
        stats, cancelled = cfg_engine.apply_batch(
            [InsertEdge(0, 3), DeleteEdge(0, 3)])
        assert len(stats) == 2 and cancelled == 0


class TestApplyLoggedBatches:
    """The replica-side replay path: WAL records applied verbatim under
    one batch bracket."""

    def test_replays_records_in_order_and_returns_last_seq(self):
        engine = repro.open(path_graph(5))
        reference = repro.open(path_graph(5))
        records = [
            (3, [InsertEdge(0, 2), InsertEdge(0, 3)]),
            (4, [DeleteEdge(0, 2)]),
            (5, [InsertEdge(1, 4)]),
        ]
        assert engine.apply_logged_batches(records) == 5
        for _, updates in records:
            reference.apply_stream(updates)
        for s in range(5):
            for t in range(5):
                assert engine.query(s, t) == reference.query(s, t)

    def test_empty_stream_returns_none(self):
        engine = repro.open(path_graph(3))
        assert engine.apply_logged_batches([]) is None
        assert engine.apply_logged_batches([(7, [])]) == 7

    def test_single_batch_bracket_across_records(self):
        calls = []
        engine = repro.open(path_graph(4))
        backend = engine.backend
        orig_begin, orig_end = backend.begin_update_batch, backend.end_update_batch
        backend.begin_update_batch = lambda: calls.append("begin")
        backend.end_update_batch = lambda: calls.append("end")
        try:
            engine.apply_logged_batches(
                [(1, [InsertEdge(0, 2)]), (2, [InsertEdge(0, 3)])]
            )
        finally:
            backend.begin_update_batch = orig_begin
            backend.end_update_batch = orig_end
        assert calls == ["begin", "end"]

    def test_bracket_closes_on_failure(self):
        calls = []
        engine = repro.open(path_graph(4))
        backend = engine.backend
        orig_end = backend.end_update_batch
        backend.end_update_batch = lambda: calls.append("end")
        try:
            with pytest.raises(Exception):
                engine.apply_logged_batches([(1, [object()])])
        finally:
            backend.end_update_batch = orig_end
        assert calls == ["end"]


class TestUniformStatsAndPolicies:
    """The directed-parity satellite: stats history, rebuild policies and
    drift checks now behave identically on every backend."""

    def test_directed_history_records_update_stats(self):
        engine = repro.open(DiGraph.from_edges([(0, 1), (1, 2), (2, 3)]))
        s1 = engine.insert_edge(0, 3)
        s2 = engine.delete_edge(1, 2)
        assert s1.kind == "insert" and s1.elapsed > 0
        assert s2.kind == "delete" and s2.elapsed > 0
        assert engine.history.updates == 2
        assert engine.history.insertions == 1
        assert engine.history.deletions == 1
        assert engine.history.accumulated_time > 0
        assert engine.history.totals.total_label_ops > 0

    def test_directed_rebuild_every(self):
        engine = repro.open(
            DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]),
            rebuild_every=2,
        )
        engine.insert_edge(0, 2)
        assert engine._updates_since_rebuild == 1
        engine.insert_edge(0, 3)  # triggers the lazy rebuild
        assert engine._updates_since_rebuild == 0
        assert engine.check()

    def test_directed_drift_report(self):
        engine = repro.open(DiGraph.from_edges([(0, 1), (1, 2), (0, 2)]))
        report = engine.drift(samples=50)
        assert "sampled_inversions" in report
        assert "rebuild_recommended" in report

    def test_weighted_history_parity(self):
        engine = repro.open(WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2)]))
        engine.insert_edge(0, 2, 3)
        engine.set_weight(0, 2, 5)
        engine.delete_edge(0, 2)
        assert engine.history.updates == 3
        assert engine.history.insertions == 1
        # weight increases run the decremental path and report as deletions
        assert engine.history.deletions == 2

    def test_core_drift_rebuild_threshold_still_works(self):
        g = erdos_renyi(14, 24, seed=2)
        engine = repro.open(
            g, rebuild_drift_threshold=0.0, drift_check_every=1, cache_size=0)
        engine.insert_edge(*next(
            (u, v) for u in sorted(g.vertices()) for v in sorted(g.vertices())
            if u < v and not g.has_edge(u, v)))
        # with threshold 0 and per-update checks, any inversion rebuilds
        assert engine._updates_since_rebuild in (0, 1)
        assert engine.check()


class TestReviewRegressions:
    def test_noop_set_weight_keeps_cache_and_rebuild_counter(self):
        engine = repro.open(
            WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2)]), rebuild_every=2)
        engine.query(0, 2)
        epoch = engine.epoch
        for _ in range(5):
            stats = engine.set_weight(0, 1, 2)  # unchanged weight
        assert stats.kind == "noop"
        assert engine.epoch == epoch  # cache stays warm
        assert engine._updates_since_rebuild == 0  # no spurious rebuilds
        assert engine.history.updates == 5  # but the history still records

    def test_check_sample_pairs_works_on_large_directed_and_weighted(self):
        from repro.graph import random_directed, random_weighted

        # The directed/weighted verifiers used to be exhaustive-only and
        # raised above 300/200 vertices; check(sample_pairs=...) must work.
        assert repro.open(random_directed(350, 700, seed=1)).check(
            sample_pairs=40)
        assert repro.open(random_weighted(250, 500, seed=2)).check(
            sample_pairs=40)

    def test_failed_weighted_insert_leaves_engine_untouched(self):
        engine = repro.open(WeightedGraph.from_edges([(0, 1, 1)]))
        epoch = engine.epoch
        with pytest.raises(EngineError):
            engine.insert_edge(5, 6)  # weight missing
        assert not engine.graph.has_vertex(5)
        assert not engine.graph.has_vertex(6)
        assert engine.epoch == epoch
        assert engine.history.updates == 0

    def test_coalesced_batch_rejects_weight_on_unweighted_graph(self):
        from repro.exceptions import WorkloadError

        engine = repro.open(path_graph(3))
        with pytest.raises(WorkloadError):
            engine.apply_batch([InsertEdge(0, 2, weight=5.0)])

    def test_delete_edge_undo_carries_weight(self):
        engine = repro.open(WeightedGraph.from_edges([(0, 1, 2), (1, 2, 3)]))
        upd = DeleteEdge(0, 1, weight=engine.graph.weight(0, 1))
        engine.apply(upd)
        engine.apply(upd.undo())
        assert engine.query(0, 2) == (5, 1)
        assert engine.check()


class TestEngineMisc:
    def test_weight_rejected_on_unweighted_backends(self):
        with pytest.raises(EngineError):
            repro.open(path_graph(3)).insert_edge(0, 2, weight=4)
        with pytest.raises(EngineError):
            repro.open(DiGraph.from_edges([(0, 1)])).insert_edge(1, 0, weight=4)

    def test_weight_required_on_weighted_backend(self):
        engine = repro.open(WeightedGraph.from_edges([(0, 1, 1)]))
        with pytest.raises(EngineError):
            engine.insert_edge(0, 2)

    def test_set_weight_rejected_on_unweighted_backends(self):
        with pytest.raises(EngineError):
            repro.open(path_graph(3)).set_weight(0, 1, 2)

    def test_open_accepts_prebuilt_index(self):
        from repro import build_spc_index

        g = path_graph(5)
        index = build_spc_index(g)
        engine = repro.open(g, index=index)
        assert engine.index is index
        assert engine.query(0, 4) == (4, 1)

    def test_open_config_plus_overrides(self):
        cfg = EngineConfig(rebuild_every=7)
        engine = repro.open(path_graph(3), config=cfg, cache_size=0)
        assert engine.config.rebuild_every == 7
        assert engine.config.cache_size == 0

    def test_engine_constructor_backend_kwarg(self):
        engine = SPCEngine(path_graph(3), backend="core")
        assert engine.backend_name == "core"

    def test_repr_names_backend(self):
        assert "backend='core'" in repr(repro.open(path_graph(3)))
