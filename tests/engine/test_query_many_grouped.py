"""The grouped (shared-scan) batch-query path of SPCEngine.query_many."""

import pytest

import repro
from repro.graph.generators import (
    erdos_renyi,
    path_graph,
    random_directed,
    random_weighted,
)


def all_backend_engines(cache_size=0):
    return [
        repro.open(erdos_renyi(40, 90, seed=1), cache_size=cache_size),
        repro.open(random_directed(30, 120, seed=2), cache_size=cache_size),
        repro.open(random_weighted(30, 80, seed=3), cache_size=cache_size),
        repro.open(erdos_renyi(40, 90, seed=1), backend="sd",
                   cache_size=cache_size),
    ]


class TestGroupedMatchesMerge:
    @pytest.mark.parametrize("engine", all_backend_engines(),
                             ids=lambda e: e.backend_name)
    def test_repeated_sources_match_per_pair_query(self, engine):
        vs = sorted(engine.graph.vertices())
        pairs = [(s, t) for s in vs[:4] for t in vs]
        assert engine.query_many(pairs) == [
            engine.index.query(s, t) for s, t in pairs
        ]

    @pytest.mark.parametrize("engine", all_backend_engines(),
                             ids=lambda e: e.backend_name)
    def test_self_and_duplicate_pairs(self, engine):
        vs = sorted(engine.graph.vertices())
        s = vs[0]
        pairs = [(s, s), (s, vs[1]), (s, vs[1]), (s, s)]
        answers = engine.query_many(pairs)
        assert answers[0] == answers[3]
        assert answers[1] == answers[2]
        assert answers[0][0] == 0

    def test_singleton_sources_fall_back(self):
        engine = repro.open(path_graph(6), cache_size=0)
        pairs = [(0, 5), (1, 4), (2, 3)]  # all distinct sources
        assert engine.query_many(pairs) == [
            engine.index.query(s, t) for s, t in pairs
        ]

    def test_empty_batch(self):
        assert repro.open(path_graph(3)).query_many([]) == []


class TestCacheSemantics:
    def test_grouped_answers_are_cached(self):
        engine = repro.open(path_graph(8), cache_size=64)
        pairs = [(0, t) for t in range(8)]
        first = engine.query_many(pairs)
        info_after_first = engine.cache_info()
        assert engine.query_many(pairs) == first
        info_after_second = engine.cache_info()
        assert info_after_second["hits"] >= info_after_first["hits"] + len(pairs)

    def test_cache_hits_skip_the_probe(self):
        engine = repro.open(path_graph(8), cache_size=64)
        pairs = [(0, t) for t in range(8)]
        warm = engine.query_many(pairs)
        # Mutating the index behind the engine's back would change probe
        # answers; cached answers must be served verbatim instead.
        assert engine.query_many(pairs) == warm

    def test_updates_invalidate_grouped_answers(self):
        engine = repro.open(path_graph(8), cache_size=64)
        pairs = [(0, 7), (0, 6), (0, 5)]
        assert engine.query_many(pairs) == [(7, 1), (6, 1), (5, 1)]
        engine.insert_edge(0, 7)
        assert engine.query_many(pairs) == [(1, 1), (2, 1), (3, 1)]

    def test_counters_one_miss_per_distinct_pair(self):
        engine = repro.open(path_graph(5), cache_size=64)
        engine.query_many([(0, 2), (0, 2), (1, 3)])
        info = engine.cache_info()
        assert info["misses"] == 2  # duplicates never touch the counters
        assert info["hits"] == 0
        engine.query_many([(0, 2), (0, 2), (1, 3)])
        info = engine.cache_info()
        assert info["misses"] == 2
        assert info["hits"] == 3  # warm occurrences each count a hit

    def test_mixed_hit_miss_batch(self):
        engine = repro.open(path_graph(10), cache_size=64)
        engine.query(0, 9)  # warm one pair
        pairs = [(0, 9), (0, 8), (0, 7), (3, 4)]
        assert engine.query_many(pairs) == [
            engine.index.query(s, t) for s, t in pairs
        ]


class TestUndirectedSymmetryCaching:
    def test_symmetric_pairs_share_cache_entries(self):
        engine = repro.open(path_graph(6), cache_size=64)
        engine.query_many([(0, t) for t in range(6)])
        before = engine.cache_info()["hits"]
        engine.query_many([(t, 0) for t in range(6)])
        assert engine.cache_info()["hits"] >= before + 6


class TestMissDeduplication:
    @staticmethod
    def count_probes(monkeypatch):
        """Instrument SPCIndex.source_probe to record every probe(t) call."""
        from repro.core.index import SPCIndex

        calls = []
        original = SPCIndex.source_probe

        def counting_source_probe(self, s):
            probe = original(self, s)

            def counted(t):
                calls.append((s, t))
                return probe(t)

            return counted

        monkeypatch.setattr(SPCIndex, "source_probe", counting_source_probe)
        return calls

    def test_duplicate_pairs_compute_once_without_cache(self, monkeypatch):
        calls = self.count_probes(monkeypatch)
        engine = repro.open(path_graph(8), cache_size=0)
        answers = engine.query_many([(0, 7)] * 50 + [(0, 6)])
        assert answers == [engine.index.query(0, 7)] * 50 + [
            engine.index.query(0, 6)
        ]
        assert len(calls) == 2  # one probe per distinct pair

    def test_symmetric_duplicates_compute_once_without_cache(self, monkeypatch):
        calls = self.count_probes(monkeypatch)
        engine = repro.open(path_graph(8), cache_size=0)
        answers = engine.query_many([(0, 7), (7, 0), (0, 6)])
        assert answers[0] == answers[1]
        assert len(calls) == 2
