"""QueryCache: LRU bounds, epoch invalidation, counters."""

import pytest

from repro.engine import QueryCache


class TestBasics:
    def test_put_get_roundtrip(self):
        cache = QueryCache(maxsize=4)
        cache.put((0, 1), (1, 1))
        assert cache.get((0, 1)) == (1, 1)
        assert cache.get((9, 9)) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            QueryCache(maxsize=0)

    def test_len_bounded_by_maxsize(self):
        cache = QueryCache(maxsize=3)
        for i in range(10):
            cache.put((i, i), (i, 1))
        assert len(cache) == 3

    def test_lru_eviction_order(self):
        cache = QueryCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # touch "a": "b" becomes LRU
        cache.put("c", 3)               # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3


class TestEpochs:
    def test_invalidate_expires_all_entries(self):
        cache = QueryCache(maxsize=8)
        cache.put((0, 1), (1, 1))
        cache.put((1, 2), (1, 1))
        cache.invalidate()
        assert cache.get((0, 1)) is None
        assert cache.get((1, 2)) is None

    def test_fresh_writes_after_invalidate_hit(self):
        cache = QueryCache(maxsize=8)
        cache.put((0, 1), (1, 1))
        cache.invalidate()
        cache.put((0, 1), (2, 2))
        assert cache.get((0, 1)) == (2, 2)

    def test_invalidate_is_constant_time_bookkeeping(self):
        cache = QueryCache(maxsize=8)
        cache.put((0, 1), (1, 1))
        epoch_before = cache.epoch
        cache.invalidate()
        assert cache.epoch == epoch_before + 1
        assert cache.invalidations == 1

    def test_info_snapshot(self):
        cache = QueryCache(maxsize=4)
        cache.put((0, 1), (1, 1))
        cache.get((0, 1))
        info = cache.info()
        assert info["hits"] == 1
        assert info["size"] == 1
        assert info["maxsize"] == 4

    def test_clear_resets_counters(self):
        cache = QueryCache(maxsize=4)
        cache.put((0, 1), (1, 1))
        cache.get((0, 1))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
