"""Unit tests for weighted updates: insert/delete and weight changes."""

import random

import pytest

from repro.exceptions import EdgeNotFound, GraphError
from repro.graph import WeightedGraph, random_weighted
from repro.verify import verify_espc_weighted
from repro.weighted import (
    DynamicWeightedSPC,
    build_weighted_spc_index,
    dec_spc_weighted,
    decrease_weight,
    inc_spc_weighted,
    increase_weight,
)

INF = float("inf")


class TestWeightedIncremental:
    def test_insert_shortcut(self):
        g = WeightedGraph.from_edges([(0, 1, 3), (1, 2, 3)])
        index = build_weighted_spc_index(g)
        inc_spc_weighted(g, index, 0, 2, 4)
        assert index.query(0, 2) == (4, 1)
        assert verify_espc_weighted(g, index)

    def test_insert_tie(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2)])
        index = build_weighted_spc_index(g)
        inc_spc_weighted(g, index, 0, 2, 4)
        assert index.query(0, 2) == (4, 2)
        assert verify_espc_weighted(g, index)

    def test_insert_useless_heavy_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (1, 2, 1)])
        index = build_weighted_spc_index(g)
        inc_spc_weighted(g, index, 0, 2, 10)
        assert index.query(0, 2) == (2, 1)
        assert verify_espc_weighted(g, index)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_insertions(self, seed):
        rng = random.Random(seed)
        g = random_weighted(14, 25, max_weight=4, seed=seed)
        index = build_weighted_spc_index(g)
        done = 0
        while done < 8:
            u, v = rng.randrange(14), rng.randrange(14)
            if u == v or g.has_edge(u, v):
                continue
            inc_spc_weighted(g, index, u, v, rng.randint(1, 4))
            done += 1
            assert verify_espc_weighted(g, index), f"seed={seed}"


class TestWeightChanges:
    def test_decrease_creates_shortcut(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2), (0, 2, 10)])
        index = build_weighted_spc_index(g)
        decrease_weight(g, index, 0, 2, 3)
        assert index.query(0, 2) == (3, 1)
        assert verify_espc_weighted(g, index)

    def test_decrease_to_tie(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2), (0, 2, 10)])
        index = build_weighted_spc_index(g)
        decrease_weight(g, index, 0, 2, 4)
        assert index.query(0, 2) == (4, 2)
        assert verify_espc_weighted(g, index)

    def test_decrease_guard(self):
        g = WeightedGraph.from_edges([(0, 1, 2)])
        index = build_weighted_spc_index(g)
        with pytest.raises(GraphError):
            decrease_weight(g, index, 0, 1, 2)

    def test_increase_breaks_tie(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 3, 2), (0, 2, 2), (2, 3, 2)])
        index = build_weighted_spc_index(g)
        assert index.query(0, 3) == (4, 2)
        increase_weight(g, index, 2, 3, 5)
        assert index.query(0, 3) == (4, 1)
        assert verify_espc_weighted(g, index)

    def test_increase_changes_distance(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        index = build_weighted_spc_index(g)
        increase_weight(g, index, 0, 1, 10)
        assert index.query(0, 1) == (6, 1)  # 0-2-1 via weights 5+1
        assert verify_espc_weighted(g, index)

    def test_increase_guard(self):
        g = WeightedGraph.from_edges([(0, 1, 2)])
        index = build_weighted_spc_index(g)
        with pytest.raises(GraphError):
            increase_weight(g, index, 0, 1, 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_weight_churn(self, seed):
        rng = random.Random(50 + seed)
        g = random_weighted(12, 24, max_weight=5, seed=seed)
        index = build_weighted_spc_index(g)
        for _ in range(12):
            u, v, w = rng.choice(sorted(g.edges()))
            new_w = rng.randint(1, 6)
            if new_w == w:
                continue
            if new_w < w:
                decrease_weight(g, index, u, v, new_w)
            else:
                increase_weight(g, index, u, v, new_w)
            assert verify_espc_weighted(g, index), f"seed={seed}"


class TestWeightedDecremental:
    def test_delete_reroutes(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        index = build_weighted_spc_index(g)
        dec_spc_weighted(g, index, 0, 1)
        assert index.query(0, 1) == (6, 1)
        assert verify_espc_weighted(g, index)

    def test_delete_disconnects(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (1, 2, 2)])
        index = build_weighted_spc_index(g)
        dec_spc_weighted(g, index, 1, 2, use_isolated_fast_path=False)
        assert index.query(0, 2) == (INF, 0)
        assert verify_espc_weighted(g, index)

    def test_isolated_fast_path(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 1), (1, 2, 1), (2, 3, 4)])
        index = build_weighted_spc_index(g)
        stats = dec_spc_weighted(g, index, 2, 3)
        assert stats.isolated_fast_path
        assert index.query(3, 0) == (INF, 0)
        assert verify_espc_weighted(g, index)

    def test_missing_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1)], vertices=[2])
        index = build_weighted_spc_index(g)
        with pytest.raises(EdgeNotFound):
            dec_spc_weighted(g, index, 0, 2)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_deletions(self, seed):
        rng = random.Random(80 + seed)
        g = random_weighted(13, 30, max_weight=4, seed=seed)
        index = build_weighted_spc_index(g)
        edges = sorted(g.edges())
        rng.shuffle(edges)
        for u, v, _ in edges[:10]:
            dec_spc_weighted(g, index, u, v)
            assert verify_espc_weighted(g, index), f"seed={seed}"


class TestWeightedFacade:
    def test_docstring_example(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2), (0, 2, 5)])
        dyn = DynamicWeightedSPC(g)
        assert dyn.query(0, 2) == (4, 1)
        dyn.set_weight(0, 2, 4)
        assert dyn.query(0, 2) == (4, 2)

    def test_set_weight_noop(self):
        g = WeightedGraph.from_edges([(0, 1, 2)])
        dyn = DynamicWeightedSPC(g)
        stats = dyn.set_weight(0, 1, 2)
        assert stats.kind == "noop"

    def test_vertex_lifecycle(self):
        g = WeightedGraph.from_edges([(0, 1, 1)])
        dyn = DynamicWeightedSPC(g)
        dyn.insert_vertex(5, edges=[(0, 2), (1, 2)])
        assert dyn.query(5, 1) == (2, 1)
        dyn.delete_vertex(5)
        assert not dyn.graph.has_vertex(5)
        assert verify_espc_weighted(dyn.graph, dyn.index)

    def test_history_and_rebuild(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (1, 2, 1)])
        dyn = DynamicWeightedSPC(g)
        dyn.insert_edge(0, 2, 3)
        dyn.delete_edge(0, 2)
        dyn.set_weight(0, 1, 4)
        assert dyn.history.updates == 3
        assert dyn.rebuild() > 0
        assert verify_espc_weighted(dyn.graph, dyn.index)
