"""Unit tests for the weighted SPC-Index construction and queries."""

import pytest

from repro.graph import WeightedGraph, random_weighted
from repro.verify import verify_espc_weighted
from repro.weighted import build_weighted_spc_index

INF = float("inf")


class TestWeightedConstruction:
    def test_weighted_diamond(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 2), (1, 3, 2), (2, 3, 1)])
        index = build_weighted_spc_index(g)
        assert index.query(0, 3) == (3, 2)

    def test_weight_breaks_tie(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 2)])
        index = build_weighted_spc_index(g)
        assert index.query(0, 3) == (2, 1)

    def test_heavy_direct_edge_loses(self):
        g = WeightedGraph.from_edges([(0, 1, 5), (0, 2, 1), (2, 1, 1)])
        index = build_weighted_spc_index(g)
        assert index.query(0, 1) == (2, 1)

    def test_self_and_disconnected(self):
        g = WeightedGraph.from_edges([(0, 1, 2)])
        g.add_vertex(9)
        index = build_weighted_spc_index(g)
        assert index.query(0, 0) == (0, 1)
        assert index.query(0, 9) == (INF, 0)

    @pytest.mark.parametrize("seed", range(8))
    def test_espc_random_weighted(self, seed):
        g = random_weighted(18, 40, max_weight=4, seed=seed)
        index = build_weighted_spc_index(g)
        assert verify_espc_weighted(g, index)

    def test_unit_weights_match_unweighted(self):
        from repro.core import build_spc_index
        from repro.graph import Graph, erdos_renyi

        base = erdos_renyi(20, 45, seed=2)
        wg = WeightedGraph.from_edges((u, v, 1) for u, v in base.edges())
        for v in base.vertices():
            wg.add_vertex(v, exist_ok=True)
        unweighted = build_spc_index(base)
        weighted = build_weighted_spc_index(wg)
        for s in range(20):
            for t in range(20):
                assert weighted.query(s, t) == unweighted.query(s, t)


class TestWeightedIndexApi:
    def test_labels_and_sizes(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 3)])
        index = build_weighted_spc_index(g, strategy="natural")
        assert index.labels(2)[-1] == (2, 0, 1)
        assert index.size_bytes == 8 * index.num_entries

    def test_add_drop_vertex(self):
        g = WeightedGraph.from_edges([(0, 1, 1)])
        index = build_weighted_spc_index(g)
        index.add_vertex(7)
        assert index.query(7, 7) == (0, 1)
        index.drop_vertex_labels(7)
        from repro.exceptions import VertexNotFound

        with pytest.raises(VertexNotFound):
            index.label_set(7)

    def test_pre_query_upper_bound(self):
        g = random_weighted(12, 25, max_weight=3, seed=4)
        index = build_weighted_spc_index(g)
        for s in range(12):
            for t in range(12):
                assert index.pre_query(s, t)[0] >= index.query(s, t)[0]
