"""Unit tests for the verifier itself — it must catch corruption."""

import pytest

from repro.core import SPCIndex, build_spc_index
from repro.exceptions import IndexCorruption
from repro.graph import erdos_renyi, path_graph
from repro.order import VertexOrder
from repro.verify import check_invariants, indexes_equivalent, verify_espc


class TestVerifyEspc:
    def test_accepts_correct_index(self):
        g = erdos_renyi(30, 60, seed=1)
        index = build_spc_index(g)
        assert verify_espc(g, index)

    def test_detects_wrong_count(self):
        g = path_graph(4)
        index = build_spc_index(g)
        # Corrupt one count.
        ls = index.label_set(3)
        hub = ls.hubs[0]
        d, c = ls.get(hub)
        ls.set(hub, d, c + 5)
        with pytest.raises(IndexCorruption):
            verify_espc(g, index)

    def test_detects_wrong_distance(self):
        g = path_graph(4)
        index = build_spc_index(g)
        ls = index.label_set(3)
        hub = ls.hubs[0]
        _, c = ls.get(hub)
        ls.set(hub, 1, c)  # distance underestimate must surface
        with pytest.raises(IndexCorruption):
            verify_espc(g, index)

    def test_detects_missing_label(self):
        g = path_graph(5)
        index = build_spc_index(g)
        ls = index.label_set(4)
        ls.remove(ls.hubs[0])
        with pytest.raises(IndexCorruption):
            verify_espc(g, index)

    def test_sampled_mode(self):
        g = erdos_renyi(50, 120, seed=2)
        index = build_spc_index(g)
        assert verify_espc(g, index, sample_pairs=200)

    def test_explicit_pairs(self):
        g = path_graph(4)
        index = build_spc_index(g)
        assert verify_espc(g, index, sample_pairs=[(0, 3), (1, 2)])

    def test_empty_graph(self):
        from repro.graph import Graph

        g = Graph()
        index = build_spc_index(g)
        assert verify_espc(g, index)


class TestCheckInvariants:
    def test_accepts_correct_index(self, paper_index):
        assert check_invariants(paper_index)

    def test_detects_missing_self_label(self):
        index = SPCIndex(VertexOrder([0, 1]))
        index.label_set(1).remove(1)
        with pytest.raises(IndexCorruption):
            check_invariants(index)

    def test_detects_rank_violation(self):
        index = SPCIndex(VertexOrder([0, 1]))
        # Hub ranked BELOW the owner is illegal.
        index.label_set(0).set(1, 1, 1)
        with pytest.raises(IndexCorruption):
            check_invariants(index)

    def test_detects_nonpositive_count(self):
        index = SPCIndex(VertexOrder([0, 1]))
        index.label_set(1).set(0, 1, 0)
        with pytest.raises(IndexCorruption):
            check_invariants(index)

    def test_detects_zero_distance_non_self(self):
        index = SPCIndex(VertexOrder([0, 1]))
        index.label_set(1).set(0, 0, 1)
        with pytest.raises(IndexCorruption):
            check_invariants(index)


class TestIndexesEquivalent:
    def test_equivalent_after_rebuild(self):
        from repro.core import inc_spc

        g = erdos_renyi(20, 35, seed=3)
        index = build_spc_index(g)
        inc_spc(g, index, *_absent_edge(g))
        rebuilt = build_spc_index(g)
        assert indexes_equivalent(index, rebuilt, g)

    def test_detects_difference(self):
        g = path_graph(4)
        a = build_spc_index(g)
        b = build_spc_index(g)
        ls = b.label_set(3)
        hub = ls.hubs[0]
        d, c = ls.get(hub)
        ls.set(hub, d, c + 1)
        assert not indexes_equivalent(a, b, g)


def _absent_edge(g):
    vs = sorted(g.vertices())
    for u in vs:
        for v in vs:
            if u < v and not g.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")
