"""Shared fixtures: the paper's example graphs.

``paper_graph`` is the 12-vertex graph of Figure 2, reconstructed from the
SPC-Index printed in Table 2 (every (h, 1, 1) entry pins an edge; the
remaining entries cross-check distances and counts).  ``PAPER_INDEX`` is
Table 2 verbatim, in vertex-id space.
"""

import pytest

from repro.graph import Graph
from repro.order import VertexOrder

# Figure 2 example graph: v0..v11 with the ordering v0 <= v1 <= ... <= v11.
PAPER_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 8), (0, 11),
    (1, 2), (1, 5), (1, 6),
    (2, 3), (2, 5),
    (3, 7), (3, 8),
    (4, 5), (4, 7), (4, 9),
    (6, 10),
    (9, 10),
]

# Table 2: the SPC-Index of the example graph (hub id, distance, count).
PAPER_INDEX = {
    0: [(0, 0, 1)],
    1: [(0, 1, 1), (1, 0, 1)],
    2: [(0, 1, 1), (1, 1, 1), (2, 0, 1)],
    3: [(0, 1, 1), (1, 2, 1), (2, 1, 1), (3, 0, 1)],
    4: [(0, 3, 3), (1, 2, 1), (2, 2, 1), (3, 2, 1), (4, 0, 1)],
    5: [(0, 2, 2), (1, 1, 1), (2, 1, 1), (4, 1, 1), (5, 0, 1)],
    6: [(0, 2, 1), (1, 1, 1), (4, 3, 1), (6, 0, 1)],
    7: [(0, 2, 1), (1, 3, 2), (2, 2, 1), (3, 1, 1), (4, 1, 1), (7, 0, 1)],
    8: [(0, 1, 1), (2, 2, 1), (3, 1, 1), (8, 0, 1)],
    9: [(0, 4, 4), (1, 3, 2), (2, 3, 1), (3, 3, 1), (4, 1, 1), (6, 2, 1), (9, 0, 1)],
    10: [(0, 3, 1), (1, 2, 1), (3, 4, 1), (4, 2, 1), (6, 1, 1), (9, 1, 1), (10, 0, 1)],
    11: [(0, 1, 1), (11, 0, 1)],
}


@pytest.fixture
def paper_graph():
    """A fresh copy of the Figure 2 graph (12 vertices, 17 edges)."""
    return Graph.from_edges(PAPER_EDGES)


@pytest.fixture
def paper_order():
    """The prescribed ordering v0 <= v1 <= ... <= v11."""
    return VertexOrder(range(12))


@pytest.fixture
def paper_index(paper_graph, paper_order):
    """The SPC-Index built over the paper graph with the paper ordering."""
    from repro.core import build_spc_index

    return build_spc_index(paper_graph, order=paper_order)


# Figure 4 toy graph for the decremental motivation example (Example 3.9).
# Reconstructed from the printed labels: h is adjacent to w and a; the main
# line is h - a - b - u; the detour chain w - w1 - w2 - w3 - w4 - u gives
# sd(h, u) = 6 and the new label (w, 5, 1) in L(u) once (a, b) is deleted.
# Ordering: h <= w <= a <= b <= u <= w1 <= w2 <= w3 <= w4.
TOY_VERTICES = ["h", "w", "a", "b", "u", "w1", "w2", "w3", "w4"]
TOY_EDGES = [
    ("h", "w"), ("h", "a"),
    ("a", "b"),
    ("b", "u"),
    ("w", "w1"), ("w1", "w2"), ("w2", "w3"), ("w3", "w4"), ("w4", "u"),
]


@pytest.fixture
def toy_graph():
    """The Figure 4 toy graph used by Example 3.9."""
    return Graph.from_edges(TOY_EDGES)


@pytest.fixture
def toy_order():
    """Ordering h <= w <= a <= b <= u <= w1 <= w2 <= w3 <= w4."""
    return VertexOrder(TOY_VERTICES)
