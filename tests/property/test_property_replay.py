"""Property tests for the temporal event model.

The load-bearing property is the cut contract: for any raw event stream
and any time t, ``log.cut(t)`` must equal materializing the empty graph
and replaying the normalized prefix of events through t — the replay
engine trusts this when it splits a corpus into bootstrap + live tail.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph
from repro.replay import (
    DELETE,
    INSERT,
    TemporalEventLog,
    make_event,
    parse_temporal_edge_list,
)


@st.composite
def raw_event_streams(draw):
    """Unnormalized event soup: duplicates, dangles, ties, any order."""
    n = draw(st.integers(3, 8))
    count = draw(st.integers(1, 40))
    events = []
    for _ in range(count):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            v = (v + 1) % n
        kind = draw(st.sampled_from([INSERT, INSERT, DELETE]))
        ts = draw(st.integers(0, 20))  # integer stamps force ties
        events.append(make_event(float(ts), kind, u, v))
    return events


def _replay_prefix(log, t):
    """The reference semantics: apply the prefix to an all-vertex graph."""
    g = Graph()
    for v in log.vertices():
        g.add_vertex(v)
    for e in log.prefix(t):
        if e.kind == INSERT:
            g.add_edge(e.u, e.v)
        elif e.kind == DELETE:
            g.remove_edge(e.u, e.v)
    return g


@settings(max_examples=60, deadline=None)
@given(raw=raw_event_streams(), cut_at=st.floats(-1.0, 22.0))
def test_cut_equals_replaying_the_prefix(raw, cut_at):
    log = TemporalEventLog.from_raw(raw)
    got = log.cut(cut_at)
    want = _replay_prefix(log, cut_at)
    assert sorted(got.vertices()) == sorted(want.vertices())
    assert sorted(got.edges()) == sorted(want.edges())


@settings(max_examples=60, deadline=None)
@given(raw=raw_event_streams())
def test_normalized_log_is_applicable(raw):
    """Replaying the whole normalized log never hits a dead edge."""
    log = TemporalEventLog.from_raw(raw)
    live = set()
    for e in log:
        if e.kind == INSERT:
            assert e.edge not in live
            live.add(e.edge)
        else:
            assert e.edge in live
            live.discard(e.edge)


@settings(max_examples=40, deadline=None)
@given(raw=raw_event_streams())
def test_serialization_round_trips(raw):
    """to_lines -> parse reproduces an event-identical, nothing-dropped log."""
    log = TemporalEventLog.from_raw(raw)
    back = parse_temporal_edge_list(log.to_lines())
    assert list(back) == list(log)
    assert back.dropped == {}
    assert back.fingerprint() == log.fingerprint()
