"""Hypothesis strategies for graphs and update sequences."""

from hypothesis import strategies as st

from repro.graph import DiGraph, Graph, WeightedGraph


@st.composite
def small_graphs(draw, min_vertices=2, max_vertices=12, connected_bias=True):
    """An undirected simple graph with a random subset of possible edges."""
    n = draw(st.integers(min_vertices, max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        if pairs
        else st.just([])
    )
    if connected_bias and pairs:
        # Stitch a random spanning arrangement so most graphs are connected
        # (disconnected cases are still generated via the unbiased branch).
        if draw(st.booleans()):
            chain = [(i, i + 1) for i in range(n - 1)]
            edges = list({*edges, *chain})
    g = Graph()
    for v in range(n):
        g.add_vertex(v)
    for u, v in edges:
        g.add_edge(u, v)
    return g


@st.composite
def small_digraphs(draw, min_vertices=2, max_vertices=9):
    """A directed simple graph with a random subset of possible arcs."""
    n = draw(st.integers(min_vertices, max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    arcs = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs)))
    g = DiGraph()
    for v in range(n):
        g.add_vertex(v)
    for u, v in set(arcs):
        g.add_edge(u, v)
    return g


@st.composite
def small_weighted_graphs(draw, min_vertices=2, max_vertices=9, max_weight=4):
    """A weighted simple graph with small integer weights (exact ties)."""
    n = draw(st.integers(min_vertices, max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
                  if pairs else st.just([]))
    g = WeightedGraph()
    for v in range(n):
        g.add_vertex(v)
    for u, v in set(chosen):
        g.add_edge(u, v, draw(st.integers(1, max_weight)))
    return g


@st.composite
def update_scripts(draw, max_ops=10):
    """A script of abstract update ops to replay on any graph.

    Each op is ("ins", i) or ("del", i) where i indexes into the current
    candidate list (absent edges for ins, present edges for del); indices
    are taken modulo the list length at replay time so scripts compose with
    any graph.
    """
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 10_000)),
            max_size=max_ops,
        )
    )


def replay_script(graph, script, do_insert, do_delete):
    """Replay an abstract script against a live graph via callbacks."""
    n_applied = 0
    for kind, idx in script:
        if kind == "ins":
            candidates = _absent_edges(graph)
            if not candidates:
                continue
            u, v = candidates[idx % len(candidates)]
            do_insert(u, v)
        else:
            candidates = sorted(graph.edges())
            if not candidates:
                continue
            u, v = candidates[idx % len(candidates)][:2]
            do_delete(u, v)
        n_applied += 1
    return n_applied


def _absent_edges(graph):
    vs = sorted(graph.vertices())
    return [
        (u, v)
        for i, u in enumerate(vs)
        for v in vs[i + 1:]
        if not graph.has_edge(u, v)
    ]
