"""Property-based tests on the core data structures (LabelSet, VertexOrder)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import LabelSet, pack_entry, unpack_entry
from repro.order import VertexOrder


class TestLabelSetModel:
    """LabelSet must behave exactly like a dict keyed by hub."""

    @settings(max_examples=120, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "remove", "get"]),
                st.integers(0, 15),
                st.integers(0, 50),
                st.integers(1, 9),
            ),
            max_size=40,
        )
    )
    def test_against_dict_model(self, ops):
        ls = LabelSet()
        model = {}
        for op, hub, d, c in ops:
            if op == "set":
                result = ls.set(hub, d, c)
                expected = "replaced" if hub in model else "inserted"
                assert result == expected
                model[hub] = (d, c)
            elif op == "remove":
                assert ls.remove(hub) == (hub in model)
                model.pop(hub, None)
            else:
                assert ls.get(hub) == model.get(hub)
            # Invariants after every op.
            assert ls.hubs == sorted(model)
            assert ls.as_dict() == model
            assert len(ls) == len(model)

    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.dictionaries(
            st.integers(0, 2**25 - 1),
            st.tuples(st.integers(0, 2**10 - 1), st.integers(1, 2**29 - 1)),
            max_size=20,
        )
    )
    def test_pack_roundtrip(self, entries):
        ls = LabelSet()
        for h, (d, c) in entries.items():
            ls.set(h, d, c)
        unpacked = [unpack_entry(p) for p in ls.packed()]
        assert unpacked == list(ls)

    @settings(max_examples=60, deadline=None)
    @given(
        h=st.integers(0, 2**25 - 1),
        d=st.integers(0, 2**10 - 1),
        c=st.integers(0, 2**29 - 1),
    )
    def test_pack_entry_bijective_in_range(self, h, d, c):
        assert unpack_entry(pack_entry(h, d, c)) == (h, d, c)


class TestVertexOrderModel:
    @settings(max_examples=80, deadline=None)
    @given(
        initial=st.lists(st.integers(0, 30), unique=True, max_size=15),
        ops=st.lists(
            st.tuples(st.sampled_from(["append", "remove"]), st.integers(0, 30)),
            max_size=25,
        ),
    )
    def test_ranks_stable_under_churn(self, initial, ops):
        order = VertexOrder(initial)
        live_rank = {v: r for r, v in enumerate(initial)}
        next_rank = len(initial)
        for op, v in ops:
            if op == "append":
                if v in live_rank:
                    continue
                r = order.append(v)
                assert r == next_rank
                live_rank[v] = next_rank
                next_rank += 1
            else:
                if v not in live_rank:
                    continue
                freed = order.remove(v)
                assert freed == live_rank.pop(v)
            # Live vertices keep their original rank numbers forever.
            for u, r in live_rank.items():
                assert order.rank(u) == r
                assert order.vertex(r) == u
            assert len(order) == len(live_rank)
            assert order.as_list() == sorted(live_rank, key=live_rank.get)
