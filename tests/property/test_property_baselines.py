"""Property-based agreement tests across independent implementations.

BFS, BiBFS and the hub-labeling index are three independent ways to compute
(sd, spc); they must always agree.  networkx (available offline) provides a
fourth, external reference for distances and path counts.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_spc_index
from repro.traversal import bfs_counting_pair, bibfs_counting
from tests.property.strategies import small_graphs

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

INF = float("inf")


class TestThreeWayAgreement:
    @settings(max_examples=60, **COMMON)
    @given(g=small_graphs(), s=st.integers(0, 11), t=st.integers(0, 11))
    def test_bfs_bibfs_index_agree(self, g, s, t):
        n = g.num_vertices
        s %= n
        t %= n
        index = build_spc_index(g)
        expected = bfs_counting_pair(g, s, t)
        assert bibfs_counting(g, s, t) == expected
        assert index.query(s, t) == expected


class TestAgainstNetworkx:
    @settings(max_examples=40, **COMMON)
    @given(g=small_graphs(max_vertices=10))
    def test_distance_and_counts_match_networkx(self, g):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_nodes_from(g.vertices())
        nxg.add_edges_from(g.edges())
        index = build_spc_index(g)
        for s in g.vertices():
            lengths = nx.single_source_shortest_path_length(nxg, s)
            for t in g.vertices():
                d, c = index.query(s, t)
                if t not in lengths:
                    assert (d, c) == (INF, 0)
                    continue
                assert d == lengths[t]
                expected_count = sum(
                    1 for _ in nx.all_shortest_paths(nxg, s, t)
                )
                assert c == expected_count
