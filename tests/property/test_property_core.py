"""Property-based tests: the ESPC invariant under construction and updates.

These are the heavy hitters of the test suite: hypothesis drives random
graphs and update scripts through HP-SPC / IncSPC / DecSPC and checks every
query against BFS ground truth after every step.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_spc_index, dec_spc, inc_spc
from repro.verify import check_invariants, verify_espc
from tests.property.strategies import replay_script, small_graphs, update_scripts

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestStaticConstruction:
    @settings(max_examples=60, **COMMON)
    @given(g=small_graphs())
    def test_espc_holds_for_any_graph(self, g):
        index = build_spc_index(g)
        assert verify_espc(g, index)

    @settings(max_examples=40, **COMMON)
    @given(g=small_graphs(), seed=st.integers(0, 2**16))
    def test_espc_independent_of_ordering(self, g, seed):
        from repro.order import random_order

        index = build_spc_index(g, order=random_order(g, seed=seed))
        assert verify_espc(g, index)

    @settings(max_examples=40, **COMMON)
    @given(g=small_graphs())
    def test_structural_invariants(self, g):
        index = build_spc_index(g)
        assert check_invariants(index)


class TestIncrementalProperty:
    @settings(max_examples=50, **COMMON)
    @given(g=small_graphs(), script=update_scripts(max_ops=6))
    def test_insert_only_scripts(self, g, script):
        index = build_spc_index(g)
        insert_only = [(k, i) for k, i in script if k == "ins"]
        replay_script(
            g, insert_only,
            do_insert=lambda u, v: inc_spc(g, index, u, v),
            do_delete=lambda u, v: None,
        )
        assert verify_espc(g, index)
        assert check_invariants(index)


class TestDecrementalProperty:
    @settings(max_examples=50, **COMMON)
    @given(g=small_graphs(), script=update_scripts(max_ops=6))
    def test_delete_only_scripts(self, g, script):
        index = build_spc_index(g)
        delete_only = [(k, i) for k, i in script if k == "del"]
        replay_script(
            g, delete_only,
            do_insert=lambda u, v: None,
            do_delete=lambda u, v: dec_spc(g, index, u, v),
        )
        assert verify_espc(g, index)
        assert check_invariants(index)


class TestHybridProperty:
    @settings(max_examples=60, **COMMON)
    @given(g=small_graphs(), script=update_scripts(max_ops=10))
    def test_mixed_scripts_stay_exact(self, g, script):
        index = build_spc_index(g)
        replay_script(
            g, script,
            do_insert=lambda u, v: inc_spc(g, index, u, v),
            do_delete=lambda u, v: dec_spc(g, index, u, v),
        )
        assert verify_espc(g, index)

    @settings(max_examples=30, **COMMON)
    @given(g=small_graphs(max_vertices=9), script=update_scripts(max_ops=8))
    def test_dynamic_equivalent_to_rebuild(self, g, script):
        from repro.verify import indexes_equivalent

        index = build_spc_index(g)
        replay_script(
            g, script,
            do_insert=lambda u, v: inc_spc(g, index, u, v),
            do_delete=lambda u, v: dec_spc(g, index, u, v),
        )
        rebuilt = build_spc_index(g)
        assert indexes_equivalent(index, rebuilt, g)

    @settings(max_examples=30, **COMMON)
    @given(g=small_graphs(max_vertices=9), script=update_scripts(max_ops=8))
    def test_update_then_inverse_preserves_queries(self, g, script):
        # Apply one insert then its inverse delete: answers must return to
        # the original for every pair (labels may differ).
        index = build_spc_index(g)
        baseline = {
            (s, t): index.query(s, t)
            for s in g.vertices()
            for t in g.vertices()
        }
        candidates = [
            (u, v)
            for u in sorted(g.vertices())
            for v in sorted(g.vertices())
            if u < v and not g.has_edge(u, v)
        ]
        if not candidates:
            return
        u, v = candidates[len(script) % len(candidates)]
        inc_spc(g, index, u, v)
        dec_spc(g, index, u, v)
        for pair, expected in baseline.items():
            assert index.query(*pair) == expected
