"""Property-based ESPC tests for the directed and weighted extensions."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.directed import build_directed_spc_index, dec_spc_directed, inc_spc_directed
from repro.verify import verify_espc_directed, verify_espc_weighted
from repro.weighted import (
    build_weighted_spc_index,
    dec_spc_weighted,
    decrease_weight,
    inc_spc_weighted,
    increase_weight,
)
from tests.property.strategies import small_digraphs, small_weighted_graphs

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestDirectedProperty:
    @settings(max_examples=40, **COMMON)
    @given(g=small_digraphs())
    def test_construction(self, g):
        index = build_directed_spc_index(g)
        assert verify_espc_directed(g, index)

    @settings(max_examples=30, **COMMON)
    @given(g=small_digraphs(), ops=st.lists(st.integers(0, 10_000), max_size=5))
    def test_arc_insertions(self, g, ops):
        index = build_directed_spc_index(g)
        n = g.num_vertices
        pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
        for idx in ops:
            candidates = [p for p in pairs if not g.has_edge(*p)]
            if not candidates:
                break
            u, v = candidates[idx % len(candidates)]
            inc_spc_directed(g, index, u, v)
        assert verify_espc_directed(g, index)

    @settings(max_examples=30, **COMMON)
    @given(g=small_digraphs(), ops=st.lists(st.integers(0, 10_000), max_size=5))
    def test_arc_deletions(self, g, ops):
        index = build_directed_spc_index(g)
        for idx in ops:
            arcs = sorted(g.edges())
            if not arcs:
                break
            u, v = arcs[idx % len(arcs)]
            dec_spc_directed(g, index, u, v)
        assert verify_espc_directed(g, index)


class TestWeightedProperty:
    @settings(max_examples=40, **COMMON)
    @given(g=small_weighted_graphs())
    def test_construction(self, g):
        index = build_weighted_spc_index(g)
        assert verify_espc_weighted(g, index)

    @settings(max_examples=30, **COMMON)
    @given(
        g=small_weighted_graphs(),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["ins", "del", "setw"]),
                st.integers(0, 10_000),
                st.integers(1, 5),
            ),
            max_size=6,
        ),
    )
    def test_mixed_weighted_updates(self, g, ops):
        index = build_weighted_spc_index(g)
        n = g.num_vertices
        all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        for kind, idx, w in ops:
            if kind == "ins":
                candidates = [p for p in all_pairs if not g.has_edge(*p)]
                if not candidates:
                    continue
                u, v = candidates[idx % len(candidates)]
                inc_spc_weighted(g, index, u, v, w)
            elif kind == "del":
                edges = sorted(g.edges())
                if not edges:
                    continue
                u, v, _ = edges[idx % len(edges)]
                dec_spc_weighted(g, index, u, v)
            else:
                edges = sorted(g.edges())
                if not edges:
                    continue
                u, v, old = edges[idx % len(edges)]
                if w < old:
                    decrease_weight(g, index, u, v, w)
                elif w > old:
                    increase_weight(g, index, u, v, w)
        assert verify_espc_weighted(g, index)
