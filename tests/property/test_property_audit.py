"""Property-based audit tests: the shadow auditor flags every seeded
fault with the right severity class and never flags a clean run, across
all four backend families and arbitrary small graphs."""

import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.audit import (
    EXPECTED_SEVERITY,
    MODES,
    AuditSampler,
    ShadowAuditor,
    tamper_backend,
)
from repro.engine import EngineConfig, SPCEngine
from repro.serve.service import ServeConfig, SPCService
from repro.workloads import InsertEdge
from tests.property.strategies import (
    small_digraphs,
    small_graphs,
    small_weighted_graphs,
)

INF = float("inf")

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: backend family -> the graph strategy it serves.
BACKEND_STRATEGIES = {
    "core": small_graphs,
    "directed": small_digraphs,
    "weighted": small_weighted_graphs,
    "sd": small_graphs,
}


def _insertions(graph, backend, picks):
    """Up to len(picks) valid edge insertions chosen by index."""
    directed = backend == "directed"
    weighted = backend == "weighted"
    updates = []
    for pick in picks:
        vs = sorted(graph.vertices())
        if directed:
            candidates = [(u, v) for u in vs for v in vs
                          if u != v and not graph.has_edge(u, v)]
        else:
            candidates = [(u, v) for i, u in enumerate(vs) for v in vs[i + 1:]
                          if not graph.has_edge(u, v)]
        if not candidates:
            break
        u, v = candidates[pick % len(candidates)]
        weight = 1 + pick % 3 if weighted else None
        graph.add_edge(u, v, weight) if weighted else graph.add_edge(u, v)
        updates.append(InsertEdge(u, v, weight=weight))
    return updates


def run_audited(backend, graph, mode, picks):
    """One audited service run; returns (auditor stats + report, served)."""
    engine = SPCEngine(graph.copy(), config=EngineConfig(backend=backend))
    if mode is not None:
        # Pre-service tamper: every snapshot ever published lies, while
        # the checkpoint the shadow bootstraps from stays honest.
        tamper_backend(engine.backend, mode)
    with tempfile.TemporaryDirectory(prefix="repro-audit-prop-") as state_dir:
        service = SPCService(
            engine,
            config=ServeConfig(publish_every=1, durability_dir=state_dir),
            overwrite=True,
        )
        sampler = AuditSampler(rate=1.0, capacity=8192, seed=0)
        service.set_answer_tap(sampler)
        auditor = ShadowAuditor(sampler, state_dir)
        served = []
        try:
            vs = sorted(graph.vertices())
            pairs = [(u, v) for u in vs for v in vs if u != v][:30]
            for s, t in pairs:
                served.append(service.query(s, t))
            for update in _insertions(graph.copy(), backend, picks):
                service.submit(update)
                service.flush()
                for s, t in pairs[:6]:
                    served.append(service.query(s, t))
            assert auditor.drain(timeout=30.0), auditor.stats()
            assert auditor.healthy
            report = auditor.report
            assert auditor.audited == len(served)
            return report, served
        finally:
            auditor.close()
            service.close()


def corruptible(served, mode):
    """Whether the corruption mode could alter any served answer: modes
    pass through unreachable pairs, and count/refusal need a count."""
    return any(
        d != INF and (mode == "dist" or c is not None)
        for d, c in served
    )


@pytest.mark.parametrize("backend", sorted(BACKEND_STRATEGIES))
class TestAuditorProperty:
    @settings(max_examples=10, **COMMON)
    @given(data=st.data(), picks=st.lists(st.integers(0, 10_000), max_size=3))
    def test_clean_runs_are_never_flagged(self, backend, data, picks):
        graph = data.draw(BACKEND_STRATEGIES[backend]())
        report, served = run_audited(backend, graph, None, picks)
        assert report.total == 0
        assert len(served) > 0

    @settings(max_examples=8, **COMMON)
    @given(
        data=st.data(),
        mode=st.sampled_from(MODES),
        picks=st.lists(st.integers(0, 10_000), max_size=3),
    )
    def test_seeded_faults_are_always_flagged_with_the_right_class(
        self, backend, data, mode, picks
    ):
        graph = data.draw(BACKEND_STRATEGIES[backend]())
        report, served = run_audited(backend, graph, mode, picks)
        if corruptible(served, mode):
            assert report.total > 0
            assert report.severities_seen() == [EXPECTED_SEVERITY[mode]]
        else:
            # Nothing the mode could corrupt (all pairs unreachable, or a
            # distance-only stream under a count corruption): the proxy
            # passed every answer through honestly, so a flag here would
            # be a false positive.
            assert report.total == 0
