"""Property tests for the reverse hub map (DESIGN.md §9).

After arbitrary mixed insert/delete/set-weight streams, each index's
maintained hub -> holders map must exactly equal a from-scratch
recomputation from the label sets — on all three counting backends — and
must survive ``to_dict``/``from_dict``/``copy`` roundtrips.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import build_spc_index, dec_spc, inc_spc
from repro.core.index import SPCIndex
from repro.directed import build_directed_spc_index, dec_spc_directed, inc_spc_directed
from repro.directed.index import DirectedSPCIndex
from repro.verify import check_invariants, check_invariants_directed
from repro.weighted import (
    build_weighted_spc_index,
    dec_spc_weighted,
    decrease_weight,
    inc_spc_weighted,
    increase_weight,
)
from repro.weighted.index import WeightedSPCIndex
from tests.property.strategies import (
    small_digraphs,
    small_graphs,
    small_weighted_graphs,
)

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def recompute_holders(label_sets):
    """From-scratch {hub_rank: set(vertex)} over {vertex: LabelSet}."""
    holders = {}
    for v, ls in label_sets.items():
        for h in ls.hubs:
            holders.setdefault(h, set()).add(v)
    return holders


def assert_holders_exact(index):
    label_of = (
        {v: index.label_set(v) for v in index.vertices()}
        if hasattr(index, "label_set")
        else None
    )
    if label_of is not None:
        assert index.holders_map() == recompute_holders(label_of)
    else:
        lin = {v: index.in_label_set(v) for v in index.vertices()}
        lout = {v: index.out_label_set(v) for v in index.vertices()}
        assert index.in_holders_map() == recompute_holders(lin)
        assert index.out_holders_map() == recompute_holders(lout)


class TestCoreHoldersMap:
    @settings(max_examples=30, **COMMON)
    @given(g=small_graphs(), ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 10_000)),
        max_size=8,
    ))
    def test_mixed_stream_matches_recomputation(self, g, ops):
        index = build_spc_index(g)
        assert_holders_exact(index)
        n = g.num_vertices
        all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        for kind, idx in ops:
            if kind == "ins":
                candidates = [p for p in all_pairs if not g.has_edge(*p)]
                if not candidates:
                    continue
                inc_spc(g, index, *candidates[idx % len(candidates)])
            else:
                edges = sorted(g.edges())
                if not edges:
                    continue
                dec_spc(g, index, *edges[idx % len(edges)])
            assert_holders_exact(index)
        assert check_invariants(index)

    @settings(max_examples=20, **COMMON)
    @given(g=small_graphs(), ops=st.lists(st.integers(0, 10_000), max_size=4))
    def test_roundtrips_preserve_holders(self, g, ops):
        index = build_spc_index(g)
        for idx in ops:
            edges = sorted(g.edges())
            if not edges:
                break
            dec_spc(g, index, *edges[idx % len(edges)])
        restored = SPCIndex.from_dict(index.to_dict())
        assert restored.holders_map() == index.holders_map()
        clone = index.copy()
        assert clone.holders_map() == index.holders_map()
        assert clone.holders_map() is not index.holders_map()
        assert_holders_exact(restored)
        assert_holders_exact(clone)


class TestDirectedHoldersMap:
    @settings(max_examples=25, **COMMON)
    @given(g=small_digraphs(), ops=st.lists(
        st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 10_000)),
        max_size=8,
    ))
    def test_mixed_stream_matches_recomputation(self, g, ops):
        index = build_directed_spc_index(g)
        assert_holders_exact(index)
        n = g.num_vertices
        all_pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
        for kind, idx in ops:
            if kind == "ins":
                candidates = [p for p in all_pairs if not g.has_edge(*p)]
                if not candidates:
                    continue
                inc_spc_directed(g, index, *candidates[idx % len(candidates)])
            else:
                arcs = sorted(g.edges())
                if not arcs:
                    continue
                dec_spc_directed(g, index, *arcs[idx % len(arcs)])
            assert_holders_exact(index)
        assert check_invariants_directed(index)

    @settings(max_examples=15, **COMMON)
    @given(g=small_digraphs())
    def test_roundtrips_preserve_holders(self, g):
        index = build_directed_spc_index(g)
        restored = DirectedSPCIndex.from_dict(index.to_dict())
        assert restored.in_holders_map() == index.in_holders_map()
        assert restored.out_holders_map() == index.out_holders_map()
        clone = index.copy()
        assert clone.in_holders_map() == index.in_holders_map()
        assert clone.out_holders_map() == index.out_holders_map()
        assert_holders_exact(restored)
        assert_holders_exact(clone)


class TestWeightedHoldersMap:
    @settings(max_examples=25, **COMMON)
    @given(
        g=small_weighted_graphs(),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["ins", "del", "setw"]),
                st.integers(0, 10_000),
                st.integers(1, 5),
            ),
            max_size=8,
        ),
    )
    def test_mixed_stream_matches_recomputation(self, g, ops):
        index = build_weighted_spc_index(g)
        assert_holders_exact(index)
        n = g.num_vertices
        all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        for kind, idx, w in ops:
            if kind == "ins":
                candidates = [p for p in all_pairs if not g.has_edge(*p)]
                if not candidates:
                    continue
                inc_spc_weighted(g, index, *candidates[idx % len(candidates)], w)
            elif kind == "del":
                edges = sorted(g.edges())
                if not edges:
                    continue
                u, v, _ = edges[idx % len(edges)]
                dec_spc_weighted(g, index, u, v)
            else:
                edges = sorted(g.edges())
                if not edges:
                    continue
                u, v, old = edges[idx % len(edges)]
                if w < old:
                    decrease_weight(g, index, u, v, w)
                elif w > old:
                    increase_weight(g, index, u, v, w)
            assert_holders_exact(index)
        assert check_invariants(index)

    @settings(max_examples=15, **COMMON)
    @given(g=small_weighted_graphs())
    def test_roundtrips_preserve_holders(self, g):
        index = build_weighted_spc_index(g)
        restored = WeightedSPCIndex.from_dict(index.to_dict())
        assert restored.holders_map() == index.holders_map()
        clone = index.copy()
        assert clone.holders_map() == index.holders_map()
        assert_holders_exact(restored)
        assert_holders_exact(clone)
