"""Property-based shard tests: a ShardedCluster's merged scatter-gather
answers equal a single-engine SPCEngine's on arbitrary small graphs, for
all four backend families, every partitioner strategy, and under
kill/restart churn — plus algebraic laws of the shared partial-merge."""

import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.audit import IDENTITY_PARTIAL, merge_partial_answers
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import ShardError
from repro.shard import ShardedCluster, make_partitioner, partial_answer
from repro.workloads import InsertEdge
from tests.property.strategies import (
    small_digraphs,
    small_graphs,
    small_weighted_graphs,
)

INF = float("inf")

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: backend family -> the graph strategy it serves.
BACKEND_STRATEGIES = {
    "core": small_graphs,
    "directed": small_digraphs,
    "weighted": small_weighted_graphs,
    "sd": small_graphs,
}


def _insertions(graph, backend, picks):
    """Up to len(picks) valid edge insertions chosen by index (the graph
    argument is a scratch copy used only to keep the picks valid)."""
    directed = backend == "directed"
    weighted = backend == "weighted"
    updates = []
    for pick in picks:
        vs = sorted(graph.vertices())
        if directed:
            candidates = [(u, v) for u in vs for v in vs
                          if u != v and not graph.has_edge(u, v)]
        else:
            candidates = [(u, v) for i, u in enumerate(vs) for v in vs[i + 1:]
                          if not graph.has_edge(u, v)]
        if not candidates:
            break
        u, v = candidates[pick % len(candidates)]
        weight = 1 + pick % 3 if weighted else None
        graph.add_edge(u, v, weight) if weighted else graph.add_edge(u, v)
        updates.append(InsertEdge(u, v, weight=weight))
    return updates


def assert_cluster_matches_engine(sc, engine):
    vs = sorted(engine.graph.vertices())
    pairs = [(u, v) for u in vs for v in vs if u != v][:40]
    answers = sc.query_many(pairs)
    for (s, t), got in zip(pairs, answers):
        assert got == engine.query(s, t), (s, t)


@pytest.mark.parametrize("backend", sorted(BACKEND_STRATEGIES))
class TestShardedClusterProperty:
    @settings(max_examples=6, **COMMON)
    @given(
        data=st.data(),
        strategy=st.sampled_from(["balanced", "range", "hash"]),
        picks=st.lists(st.integers(0, 10_000), max_size=3),
    )
    def test_merged_answers_equal_engine(self, backend, data, strategy,
                                         picks):
        graph = data.draw(BACKEND_STRATEGIES[backend]())
        shards = data.draw(st.integers(1, 4), label="shards")
        engine = SPCEngine(graph.copy(), config=EngineConfig(backend=backend))
        with tempfile.TemporaryDirectory(prefix="repro-shard-prop-") as d:
            with ShardedCluster(
                engine, d, shards=shards, partitioner=strategy,
            ) as sc:
                sc.sync()
                assert_cluster_matches_engine(sc, engine)
                for update in _insertions(graph.copy(), backend, picks):
                    sc.submit(update)
                sc.sync()
                assert_cluster_matches_engine(sc, engine)

    @settings(max_examples=4, **COMMON)
    @given(
        data=st.data(),
        strategy=st.sampled_from(["balanced", "hash"]),
        picks=st.lists(st.integers(0, 10_000), min_size=1, max_size=2),
    )
    def test_answers_survive_kill_restart_churn(self, backend, data,
                                                strategy, picks):
        graph = data.draw(BACKEND_STRATEGIES[backend]())
        shards = data.draw(st.integers(2, 3), label="shards")
        victim = data.draw(st.integers(0, shards - 1), label="victim")
        engine = SPCEngine(graph.copy(), config=EngineConfig(backend=backend))
        with tempfile.TemporaryDirectory(prefix="repro-shard-prop-") as d:
            with ShardedCluster(
                engine, d, shards=shards, partitioner=strategy,
            ) as sc:
                sc.sync()
                sc.kill_shard(victim)
                # down => refusal, never a wrong merged answer
                vs = sorted(engine.graph.vertices())
                with pytest.raises(ShardError):
                    sc.query(vs[0], vs[-1])
                for update in _insertions(graph.copy(), backend, picks):
                    sc.submit(update)  # writes keep flowing while down
                sc.restart_shard(victim)
                sc.sync()
                assert_cluster_matches_engine(sc, engine)


class TestMergeAlgebra:
    entries = st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 4), st.integers(1, 3)),
        max_size=5,
    ).map(
        lambda es: [list(t) for t in
                    sorted({e[0]: e for e in es}.values())]
    )

    partials = st.one_of(
        st.just(IDENTITY_PARTIAL),
        st.tuples(st.integers(0, 8), st.integers(0, 9)),
        st.tuples(st.integers(0, 8), st.just(None)),  # distance-only family
        st.tuples(st.just(INF), st.just(0)),
    )

    @settings(max_examples=50, **COMMON)
    @given(a=partials, b=partials, c=partials)
    def test_merge_is_associative_and_commutative(self, a, b, c):
        merged = merge_partial_answers
        assert merged(a, b) == merged(b, a)
        assert merged(merged(a, b), c) == merged(a, merged(b, c))
        assert merged(a, IDENTITY_PARTIAL) == (
            a if a[0] != INF else IDENTITY_PARTIAL
        )

    @settings(max_examples=40, **COMMON)
    @given(
        s=entries, t=entries,
        boundary=st.integers(1, 6),
        counts=st.booleans(),
    )
    def test_sliced_partials_fold_to_the_full_merge(self, s, t, boundary,
                                                    counts):
        # Cutting the hub space anywhere and folding the two partials
        # must reproduce the unsliced two-pointer merge.
        p = make_partitioner("hash", 2, seed=boundary)
        full = partial_answer(s, t, counts=counts)
        folded = merge_partial_answers(*[
            partial_answer(
                [e for e in s if p.shard_of(e[0]) == i],
                [e for e in t if p.shard_of(e[0]) == i],
                counts=counts,
            )
            for i in range(2)
        ])
        if not counts:
            folded = (folded[0], None)
        assert folded == full
