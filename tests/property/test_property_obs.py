"""Property tests for the observability layer (DESIGN.md §16).

The load-bearing algebra: ``Histogram.merge`` must behave exactly like
recording the union of the value streams — associative, commutative,
with an identity — so per-shard histograms can be rolled up in any
grouping and order without changing a single bucket.  The same law is
pinned one level up for whole registries, and the deterministic
bucketing function is pinned as a pure function of the value.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    SUBBUCKETS,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper,
)

COMMON = dict(deadline=None)

#: observation values: non-negative, finite, spanning sub-microsecond
#: durations to large sizes (zero exercises the reserved bucket).
values = st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
                   allow_infinity=False)
value_lists = st.lists(values, max_size=60)


def record(stream):
    h = Histogram("h")
    for v in stream:
        h.observe(v)
    return h


def assert_same(a, b):
    assert a.buckets == b.buckets
    assert a.zero_count == b.zero_count
    assert a.count == b.count
    assert a.total == pytest.approx(b.total)
    assert a.min == b.min
    assert a.max == b.max
    # Derived summaries follow from the state above, but pin them too:
    for q in (50, 90, 99):
        assert a.percentile(q) == b.percentile(q)


class TestMergeAlgebra:
    @settings(**COMMON)
    @given(value_lists, value_lists)
    def test_sharded_recording_equals_unsharded(self, xs, ys):
        # The shard roll-up contract: two shards each observing part of
        # the traffic, merged, equal one histogram observing all of it.
        merged = record(xs)
        merged.merge(record(ys))
        assert_same(merged, record(xs + ys))

    @settings(**COMMON)
    @given(value_lists, value_lists)
    def test_merge_commutes(self, xs, ys):
        ab = record(xs)
        ab.merge(record(ys))
        ba = record(ys)
        ba.merge(record(xs))
        assert_same(ab, ba)

    @settings(**COMMON)
    @given(value_lists, value_lists, value_lists)
    def test_merge_associates(self, xs, ys, zs):
        left = record(xs)
        left.merge(record(ys))
        left.merge(record(zs))
        inner = record(ys)
        inner.merge(record(zs))
        right = record(xs)
        right.merge(inner)
        assert_same(left, right)

    @settings(**COMMON)
    @given(value_lists)
    def test_empty_histogram_is_the_identity(self, xs):
        h = record(xs)
        h.merge(Histogram("h"))
        assert_same(h, record(xs))
        empty = Histogram("h")
        empty.merge(record(xs))
        assert_same(empty, record(xs))

    @settings(**COMMON)
    @given(value_lists)
    def test_merge_does_not_mutate_the_argument(self, xs):
        frozen = record(xs)
        before = frozen.copy()
        sink = Histogram("h")
        sink.merge(frozen)
        assert_same(frozen, before)


class TestRegistryRollup:
    @settings(**COMMON)
    @given(st.lists(st.tuples(st.sampled_from(["a", "b"]), values),
                    max_size=40),
           st.integers(min_value=2, max_value=4))
    def test_per_shard_registries_roll_up_to_the_unsharded_registry(
            self, stream, shards):
        # Round-robin the (metric, value) stream over K shard-local
        # registries; merging them all must equal one registry that saw
        # the whole stream.
        union = MetricsRegistry()
        parts = [MetricsRegistry() for _ in range(shards)]
        for k, (name, v) in enumerate(stream):
            union.histogram(name).observe(v)
            union.counter(name + "_ops").inc()
            parts[k % shards].histogram(name).observe(v)
            parts[k % shards].counter(name + "_ops").inc()
        rollup = MetricsRegistry()
        for part in parts:
            rollup.merge(part)
        assert rollup.counter_values() == union.counter_values()
        for metric in union.collect():
            if metric.kind == "histogram":
                assert_same(rollup.get(metric.name), metric)


class TestBucketing:
    @settings(**COMMON)
    @given(st.floats(min_value=1e-12, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_value_lands_between_its_bucket_edges(self, v):
        index = bucket_index(v)
        assert bucket_upper(index - 1) <= v <= bucket_upper(index)

    @settings(**COMMON)
    @given(st.floats(min_value=1e-12, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_doubling_advances_exactly_subbuckets(self, v):
        assert bucket_index(2.0 * v) == bucket_index(v) + SUBBUCKETS

    @settings(**COMMON)
    @given(st.lists(st.floats(min_value=1e-9, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=60),
           st.sampled_from([50, 90, 99]))
    def test_quantiles_bound_the_exact_quantile(self, xs, q):
        # The reported pXX never undershoots the exact rank value and
        # overshoots by at most one bucket width (then clamped to max).
        h = record(xs)
        exact = sorted(xs)[max(0, -(-len(xs) * q // 100) - 1)]
        reported = h.percentile(q)
        assert reported >= exact or reported == pytest.approx(exact)
        assert reported <= min(exact * 2.0 ** (1.0 / SUBBUCKETS), h.max) \
            or reported == pytest.approx(exact)
