"""Fault-injection wrappers: corruption modes, proxies, the tamper hook."""

import pytest

from repro.audit import (
    COUNT_MISMATCH,
    DIST_MISMATCH,
    EXPECTED_SEVERITY,
    MODES,
    REFUSAL,
    CorruptingIndex,
    CorruptingSnapshot,
    classify_divergence,
    corrupt_answer,
    corrupt_snapshot_wrapper,
    tamper_backend,
)
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import AuditDivergenceError
from repro.graph.generators import erdos_renyi
from repro.serve.service import ServeConfig, SPCService
from repro.workloads import InsertVertex

INF = float("inf")


class TestCorruptAnswer:
    def test_modes_map_onto_their_severity_class(self):
        honest = (3, 2)
        for mode in MODES:
            got = corrupt_answer(honest, mode)
            assert classify_divergence(honest, got) == EXPECTED_SEVERITY[mode]

    def test_count_mode(self):
        assert corrupt_answer((3, 2), "count") == (3, 3)

    def test_dist_mode(self):
        assert corrupt_answer((3, 2), "dist") == (4, 2)
        # dist is the one mode that bites distance-only answers too.
        assert corrupt_answer((3, None), "dist") == (4, None)

    def test_refusal_mode(self):
        assert corrupt_answer((3, 2), "refusal") == (3, 0)

    @pytest.mark.parametrize("mode", MODES)
    def test_unreachable_passes_through(self, mode):
        assert corrupt_answer((INF, 0), mode) == (INF, 0)
        assert corrupt_answer((INF, None), mode) == (INF, None)

    def test_uncorruptible_counts_pass_through(self):
        # count/refusal need a count to lie about; (sd, None) has none.
        assert corrupt_answer((3, None), "count") == (3, None)
        assert corrupt_answer((3, None), "refusal") == (3, None)

    def test_unknown_mode_rejected(self):
        with pytest.raises(AuditDivergenceError):
            corrupt_answer((3, 2), "bogus")


class FakeSnapshot:
    seq = 12
    epoch = 4
    backend_name = "core"

    def query(self, s, t):
        return (2, 3)

    def query_many(self, pairs):
        return [(2, 3) for _ in pairs]


class TestCorruptingSnapshot:
    def test_read_path_lies_coordinates_do_not(self):
        snap = CorruptingSnapshot(FakeSnapshot(), "count")
        assert snap.query(0, 1) == (2, 4)
        assert snap.query_many([(0, 1), (1, 2)]) == [(2, 4), (2, 4)]
        assert (snap.seq, snap.epoch, snap.backend_name) == (12, 4, "core")

    def test_wrapper_factory(self):
        wrapper = corrupt_snapshot_wrapper("dist")
        snap = wrapper(FakeSnapshot())
        assert snap.query(0, 1) == (3, 3)

    def test_unknown_mode_rejected(self):
        with pytest.raises(AuditDivergenceError):
            CorruptingSnapshot(FakeSnapshot(), "bogus")
        with pytest.raises(AuditDivergenceError):
            corrupt_snapshot_wrapper("bogus")


class TestTamperBackend:
    def make_service(self, tmp_path):
        engine = SPCEngine(
            erdos_renyi(20, 50, seed=1), config=EngineConfig(backend="core")
        )
        service = SPCService(
            engine,
            config=ServeConfig(publish_every=1, durability_dir=str(tmp_path)),
            overwrite=True,
        )
        return engine, service

    def connected_pair(self, service, vertices):
        for s in vertices:
            for t in vertices:
                if s != t and service.query(s, t)[0] != INF:
                    return s, t
        raise AssertionError("no connected pair in the test graph")

    @pytest.mark.parametrize("mode", MODES)
    def test_published_snapshots_lie_until_restored(self, tmp_path, mode):
        engine, service = self.make_service(tmp_path)
        try:
            vs = sorted(engine.graph.vertices())
            s, t = self.connected_pair(service, vs)
            honest = service.query(s, t)
            restore = tamper_backend(engine.backend, mode)
            # An isolated vertex forces a republish (through the tampered
            # hook) without changing any s-t answer.
            service.submit(InsertVertex(900))
            service.flush()
            corrupted = service.query(s, t)
            assert corrupted == corrupt_answer(honest, mode)
            assert corrupted != honest
            restore()
            service.submit(InsertVertex(901))
            service.flush()
            assert service.query(s, t) == honest
        finally:
            service.close()

    def test_checkpoint_path_stays_honest(self, tmp_path):
        # The shadow baseline bootstraps from the checkpoint; a corrupted
        # checkpoint would compare one lie to another.
        engine, service = self.make_service(tmp_path)
        try:
            tamper_backend(engine.backend, "count")
            service.flush()
            service.checkpoint()
            from repro.serve.persist import load_checkpoint
            from repro.serve.service import SNAPSHOT_FILENAME

            payload = load_checkpoint(str(tmp_path / SNAPSHOT_FILENAME))
            assert payload["backend"] == "core"
            # A poisoned checkpoint would have serialized the proxy (and
            # likely crashed); loading cleanly is the honesty check.
        finally:
            service.close()

    def test_unknown_mode_rejected(self):
        with pytest.raises(AuditDivergenceError):
            CorruptingIndex(object(), "bogus")


class TestCorruptingIndex:
    def test_source_probe_hidden_so_batches_corrupt_too(self):
        class FakeIndex:
            def query(self, s, t):
                return (1, 1)

            def source_probe(self, s):
                raise AssertionError("batch fast path must be hidden")

        proxy = CorruptingIndex(FakeIndex(), "count")
        assert proxy.source_probe is None
        assert proxy.query(0, 1) == (1, 2)
