"""End-to-end audited cluster loads: clean, corrupted, and misconfigured."""

import pytest

from repro.audit import EXPECTED_SEVERITY, run_audit_loadgen
from repro.exceptions import AuditDivergenceError

QUICK = dict(
    replicas=2, readers=2, duration=0.6, n=100, m=300, churn=16,
    sample_rate=0.5, publish_every=4, seed=0,
)


def test_clean_run_audits_traffic_and_stays_silent():
    report = run_audit_loadgen(backend="core", corrupt=None, kill=True,
                               **QUICK)
    assert report["reads"] > 0
    assert report["updates_submitted"] > 0
    assert report["auditor"]["audited"] > 0
    assert report["severities_seen"] == []
    assert report["audit_problems"] == []
    assert report["fault_injection"].get("killed") == "replica-0"
    assert report["detection"] == {}


def test_corrupted_replica_is_detected_with_exactly_one_class():
    report = run_audit_loadgen(backend="core", corrupt="count", kill=True,
                               **QUICK)
    assert report["auditor"]["divergences"]["total"] > 0
    assert report["severities_seen"] == [EXPECTED_SEVERITY["count"]]
    detection = report["detection"]
    assert detection["first_divergence_severity"] == EXPECTED_SEVERITY["count"]
    assert detection["first_divergence_seq"] >= 0
    assert detection["detection_after_s"] >= 0
    # The corrupted replica kept its seq current the whole time — only
    # the differential audit could have noticed.
    assert report["fault_injection"]["corrupted"] == "replica-1"


def test_sd_backend_dist_corruption_is_detected():
    # The distance-only family has no counts to corrupt; dist mode is the
    # one that bites it.
    report = run_audit_loadgen(backend="sd", corrupt="dist", kill=False,
                               **QUICK)
    assert report["severities_seen"] == [EXPECTED_SEVERITY["dist"]]


def test_unknown_corrupt_mode_rejected_before_any_cluster_spins_up():
    with pytest.raises(AuditDivergenceError):
        run_audit_loadgen(backend="core", corrupt="bogus", **QUICK)


def test_corruption_with_all_replicas_dead_is_a_run_failure():
    # kill=True with a single replica leaves no corruption candidate:
    # the fault controller's failure must fail a strict run, not pass
    # silently as "nothing to corrupt".
    quick = dict(QUICK)
    quick["replicas"] = 1
    with pytest.raises(AuditDivergenceError):
        run_audit_loadgen(backend="core", corrupt="count", kill=True,
                          **quick)
