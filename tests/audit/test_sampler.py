"""AuditSampler: the geometric gate, the reservoir, and the tap contract."""

import threading

import pytest

from repro.audit import AuditSample, AuditSampler


def feed(sampler, count, seq=1, target="service", epoch=0, start=0):
    for i in range(start, start + count):
        sampler([((i, i + 1), (1, 1))], seq, target, epoch)


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            AuditSampler(rate=1.5)
        with pytest.raises(ValueError):
            AuditSampler(rate=-0.1)

    def test_capacity_bounds(self):
        with pytest.raises(ValueError):
            AuditSampler(capacity=0)


class TestGate:
    def test_rate_zero_sees_but_never_samples(self):
        sampler = AuditSampler(rate=0.0)
        feed(sampler, 100)
        assert sampler.seen == 100
        assert sampler.sampled == 0
        assert sampler.take() == []

    def test_rate_one_samples_everything(self):
        sampler = AuditSampler(rate=1.0, capacity=512)
        feed(sampler, 100)
        assert sampler.sampled == 100
        assert len(sampler.take()) == 100

    def test_rate_is_approximately_honoured(self):
        sampler = AuditSampler(rate=0.3, capacity=100000, seed=7)
        feed(sampler, 10000)
        # Binomial(10000, 0.3): 6 sigma is ~275, so this cannot flake.
        assert 2700 <= sampler.sampled <= 3300

    def test_seeded_runs_sample_identically(self):
        takes = []
        for _ in range(2):
            sampler = AuditSampler(rate=0.4, capacity=1000, seed=3)
            feed(sampler, 200)
            takes.append([(s.s, s.t) for s in sampler.take()])
        assert takes[0] == takes[1]

    def test_skip_carries_across_calls_and_batches(self):
        # The same answer stream sampled identically whether it arrives
        # as point taps or as one batch tap.
        stream = [((i, i + 1), (1, 1)) for i in range(300)]
        point = AuditSampler(rate=0.25, capacity=1000, seed=11)
        for item in stream:
            point([item], 1, "t", 0)
        batch = AuditSampler(rate=0.25, capacity=1000, seed=11)
        batch(stream, 1, "t", 0)
        assert [s.s for s in point.take()] == [s.s for s in batch.take()]


class TestReservoir:
    def test_capacity_bounds_memory(self):
        sampler = AuditSampler(rate=1.0, capacity=16)
        feed(sampler, 500)
        assert sampler.pending() == 16
        assert sampler.sampled == 500
        assert sampler.evicted == 484

    def test_take_swaps_and_resets(self):
        sampler = AuditSampler(rate=1.0, capacity=64)
        feed(sampler, 10)
        first = sampler.take()
        assert len(first) == 10
        assert sampler.pending() == 0
        feed(sampler, 5, start=50)
        assert len(sampler.take()) == 5
        assert sampler.taken == 15

    def test_samples_carry_the_consistency_point(self):
        sampler = AuditSampler(rate=1.0)
        sampler([((3, 4), (2, 5))], 17, "replica-1", 9)
        (sample,) = sampler.take()
        assert isinstance(sample, AuditSample)
        assert (sample.s, sample.t, sample.answer) == (3, 4, (2, 5))
        assert (sample.seq, sample.target, sample.epoch) == (17, "replica-1", 9)

    def test_stats_are_json_safe_counters(self):
        sampler = AuditSampler(rate=1.0, capacity=8)
        feed(sampler, 20)
        stats = sampler.stats()
        assert stats["seen"] == 20
        assert stats["sampled"] == 20
        assert stats["buffered"] == 8
        assert stats["evicted"] == 12


class TestConcurrency:
    def test_concurrent_taps_never_corrupt_the_reservoir(self):
        sampler = AuditSampler(rate=0.5, capacity=128, seed=0)
        taken = []

        def reader(base):
            feed(sampler, 2000, start=base)

        def taker():
            for _ in range(50):
                taken.extend(sampler.take())

        threads = [threading.Thread(target=reader, args=(i * 10000,))
                   for i in range(4)]
        threads.append(threading.Thread(target=taker))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        taken.extend(sampler.take())
        # seen and the skip counter are GIL-approximate under contention
        # (lost updates shift which answers get sampled, nothing else),
        # but the locked reservoir accounting must balance exactly.
        assert 0 < sampler.seen <= 8000
        assert len(taken) + sampler.evicted == sampler.sampled
        assert all(isinstance(s, AuditSample) for s in taken)
