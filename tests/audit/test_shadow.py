"""ShadowAuditor end to end against a live SPCService."""

import pytest

from repro.audit import (
    COUNT_MISMATCH,
    DIST_MISMATCH,
    REFUSAL,
    AuditSampler,
    DivergenceReport,
    ShadowAuditor,
    tamper_backend,
)
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import AuditDivergenceError, ServeError
from repro.graph.generators import erdos_renyi, random_directed, random_weighted
from repro.serve.service import ServeConfig, SPCService
from repro.workloads import random_insertions

BACKEND_GRAPHS = [
    ("core", lambda: erdos_renyi(30, 70, seed=3)),
    ("directed", lambda: random_directed(30, 70, seed=3)),
    ("weighted", lambda: random_weighted(30, 70, seed=3)),
    ("sd", lambda: erdos_renyi(30, 70, seed=3)),
]


def serve_with_audit(tmp_path, backend="core", graph=None, rate=1.0,
                     report=None):
    graph = graph if graph is not None else erdos_renyi(30, 70, seed=3)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    service = SPCService(
        engine,
        config=ServeConfig(publish_every=1, durability_dir=str(tmp_path)),
        overwrite=True,
    )
    sampler = AuditSampler(rate=rate, capacity=4096, seed=1)
    service.set_answer_tap(sampler)
    auditor = ShadowAuditor(sampler, str(tmp_path), report=report)
    return service, sampler, auditor


def drive(service, updates, pairs):
    for update in updates:
        service.submit(update)
        service.flush()
        for s, t in pairs:
            service.query(s, t)


@pytest.mark.parametrize("backend,maker", BACKEND_GRAPHS)
def test_clean_run_flags_nothing(tmp_path, backend, maker):
    graph = maker()
    vs = sorted(graph.vertices())
    pairs = [(vs[i], vs[-1 - i]) for i in range(6)]
    service, sampler, auditor = serve_with_audit(
        tmp_path, backend=backend, graph=graph
    )
    try:
        updates = list(random_insertions(graph.copy(), 6, seed=5))
        drive(service, updates, pairs)
        assert auditor.drain(timeout=20.0)
        assert auditor.report.total == 0
        assert auditor.audited > 0
        assert auditor.healthy
        stats = auditor.stats()
        assert stats["backend"] == backend
        assert stats["divergences"]["total"] == 0
    finally:
        auditor.close()
        service.close()


@pytest.mark.parametrize("mode,expected", [
    ("count", COUNT_MISMATCH),
    ("dist", DIST_MISMATCH),
    ("refusal", REFUSAL),
])
def test_tampered_service_is_flagged_with_the_right_class(
    tmp_path, mode, expected
):
    graph = erdos_renyi(30, 70, seed=3)
    vs = sorted(graph.vertices())
    pairs = [(vs[i], vs[-1 - i]) for i in range(6)]
    engine = SPCEngine(graph, config=EngineConfig(backend="core"))
    service = SPCService(
        engine,
        config=ServeConfig(publish_every=1, durability_dir=str(tmp_path)),
        overwrite=True,
    )
    sampler = AuditSampler(rate=1.0, capacity=4096, seed=1)
    service.set_answer_tap(sampler)
    auditor = ShadowAuditor(sampler, str(tmp_path))
    try:
        tamper_backend(engine.backend, mode)
        updates = list(random_insertions(graph.copy(), 4, seed=5))
        drive(service, updates, pairs)
        assert auditor.drain(timeout=20.0)
        assert auditor.report.total > 0
        assert auditor.report.severities_seen() == [expected]
        first = auditor.report.divergences[0]
        assert first.backend == "core"
        assert first.target == "service"
    finally:
        auditor.close()
        service.close()


def test_raise_sink_kills_the_auditor_and_close_reraises(tmp_path):
    graph = erdos_renyi(30, 70, seed=3)
    vs = sorted(graph.vertices())
    engine = SPCEngine(graph, config=EngineConfig(backend="core"))
    service = SPCService(
        engine,
        config=ServeConfig(publish_every=1, durability_dir=str(tmp_path)),
        overwrite=True,
    )
    sampler = AuditSampler(rate=1.0, capacity=4096, seed=1)
    service.set_answer_tap(sampler)
    auditor = ShadowAuditor(
        sampler, str(tmp_path), report=DivergenceReport(sink="raise")
    )
    try:
        tamper_backend(engine.backend, "count")
        for update in random_insertions(graph.copy(), 3, seed=5):
            service.submit(update)
            service.flush()
            for i in range(6):
                service.query(vs[i], vs[-1 - i])
        with pytest.raises(ServeError):
            auditor.drain(timeout=20.0)
        assert not auditor.healthy
        assert isinstance(auditor.fatal, AuditDivergenceError)
        with pytest.raises(AuditDivergenceError):
            auditor.close()
    finally:
        service.close()


def test_survives_wal_compaction(tmp_path):
    # A caught-up auditor may skip the compaction marker and keep
    # streaming, or re-bootstrap if its poll raced the truncation — both
    # are correct; what matters is that it stays healthy, catches up,
    # and flags nothing.
    graph = erdos_renyi(30, 70, seed=3)
    vs = sorted(graph.vertices())
    service, sampler, auditor = serve_with_audit(tmp_path, graph=graph)
    try:
        updates = list(random_insertions(graph.copy(), 6, seed=5))
        drive(service, updates[:3], [(vs[0], vs[-1])])
        assert auditor.drain(timeout=20.0)
        service.checkpoint(truncate_wal=True)
        drive(service, updates[3:], [(vs[1], vs[-2])])
        assert auditor.drain(timeout=20.0)
        assert auditor.seq == service.snapshot().seq
        assert auditor.audited >= 6
        assert auditor.report.total == 0
        assert auditor.healthy
    finally:
        auditor.close()
        service.close()


def test_lagging_auditor_rebootstraps_after_wal_compaction(tmp_path):
    # Deterministic version of the lagging case: blind the tailer so the
    # primary provably applies, compacts, and moves on while the auditor
    # is behind — its next real poll must see the compaction marker past
    # its position and re-bootstrap from the fresh checkpoint.
    import threading

    graph = erdos_renyi(30, 70, seed=3)
    vs = sorted(graph.vertices())
    service, sampler, auditor = serve_with_audit(tmp_path, graph=graph)
    try:
        updates = list(random_insertions(graph.copy(), 6, seed=5))
        drive(service, updates[:3], [(vs[0], vs[-1])])
        assert auditor.drain(timeout=20.0)
        assert auditor.seq == 3
        gate = threading.Event()
        tailer = auditor._tailer
        real_poll = tailer.poll
        tailer.poll = lambda: real_poll() if gate.is_set() else ([], False)
        drive(service, updates[3:5], [(vs[1], vs[-2])])  # seqs 4-5, unseen
        service.checkpoint(truncate_wal=True)            # marker at seq 5
        drive(service, updates[5:], [(vs[2], vs[-3])])   # seq 6, post-marker
        gate.set()
        assert auditor.drain(timeout=20.0)
        assert auditor.bootstraps == 2
        assert auditor.seq == service.snapshot().seq
        # Samples claiming seqs below the re-bootstrap base are an audit
        # coverage gap, accounted — never divergences.
        assert auditor.skipped_stale >= 1
        assert auditor.report.total == 0
        assert auditor.healthy
    finally:
        auditor.close()
        service.close()


def test_context_manager_and_repr(tmp_path):
    service, sampler, auditor = serve_with_audit(tmp_path)
    with auditor:
        assert "ShadowAuditor" in repr(auditor)
        assert auditor.seq == 0
    service.close()
