"""GraphReplayer: inverse capture, the rewind window, time-travel answers."""

import pytest

from repro.audit import GraphReplayer, apply_graph_update
from repro.engine import baseline_answer
from repro.graph import DiGraph, Graph, WeightedGraph
from repro.graph.generators import erdos_renyi, random_directed, random_weighted
from repro.workloads import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    SetWeight,
)


def snapshot_state(graph):
    """A comparable full-state digest of any graph flavour."""
    if hasattr(graph, "set_weight"):
        return (sorted(graph.vertices()),
                sorted((u, v, w) for u, v, w in graph.edges()))
    return (sorted(graph.vertices()), sorted(graph.edges()))


def rewind(undos):
    for fn, args in reversed(undos):
        fn(*args)


def make_core():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    return g


class TestInverseCapture:
    @pytest.mark.parametrize("update", [
        InsertEdge(0, 2),
        DeleteEdge(0, 1),
        InsertVertex(9, edges=(0, 2)),
        DeleteVertex(1),
    ])
    def test_core_round_trip(self, update):
        g = make_core()
        before = snapshot_state(g)
        rewind(apply_graph_update(g, update))
        assert snapshot_state(g) == before

    def test_insert_edge_autocreates_and_uncreates_endpoints(self):
        g = make_core()
        before = snapshot_state(g)
        undos = apply_graph_update(g, InsertEdge(7, 8))
        assert g.has_vertex(7) and g.has_vertex(8)
        rewind(undos)
        assert snapshot_state(g) == before

    def test_directed_round_trip(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        before = snapshot_state(g)
        for update in [InsertEdge(2, 1), DeleteEdge(0, 1), DeleteVertex(2)]:
            rewind(apply_graph_update(g, update))
            assert snapshot_state(g) == before

    def test_weighted_round_trip_restores_weights(self):
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 1.0), (2, 0, 5.0)])
        before = snapshot_state(g)
        for update in [
            InsertEdge(0, 3, weight=4.0),
            DeleteEdge(2, 0),
            SetWeight(0, 1, 9.0),
            InsertVertex(7, edges=((1, 3.0),)),
            DeleteVertex(2),
        ]:
            rewind(apply_graph_update(g, update))
            assert snapshot_state(g) == before

    def test_unsupported_update_rejected(self):
        with pytest.raises(TypeError):
            apply_graph_update(make_core(), object())


class TestReplayer:
    def test_contiguity_enforced(self):
        replayer = GraphReplayer(make_core(), 0)
        replayer.apply_batch(1, [InsertEdge(0, 2)])
        with pytest.raises(ValueError):
            replayer.apply_batch(3, [InsertEdge(1, 3)])

    def test_history_validation(self):
        with pytest.raises(ValueError):
            GraphReplayer(make_core(), 0, history=0)

    def test_answer_at_every_retained_seq_matches_fresh_replay(self):
        g = erdos_renyi(24, 48, seed=5)
        replayer = GraphReplayer(g.copy(), 0, history=16)
        batches = [
            [InsertEdge(0, 9), InsertEdge(1, 7)],
            [DeleteEdge(0, 9)],
            [InsertVertex(99, edges=(0, 1))],
            [DeleteVertex(99), InsertEdge(2, 11)],
        ]
        for seq, batch in enumerate(batches, start=1):
            replayer.apply_batch(seq, batch)
        pairs = [(0, 1), (2, 9), (0, 23)]
        for seq in range(5):
            # Rebuild the state at `seq` from scratch as the oracle.
            fresh = g.copy()
            for batch in batches[:seq]:
                for update in batch:
                    apply_graph_update(fresh, update)
            for s, t in pairs:
                expected = baseline_answer(fresh, s, t)
                got = replayer.answer_at(
                    seq, lambda graph: baseline_answer(graph, s, t)
                )
                assert got == expected, (seq, s, t)
            # Time travel must leave the replayer where it was.
            assert replayer.seq == 4

    def test_rewind_window_is_bounded(self):
        replayer = GraphReplayer(Graph.from_edges([(0, 1)]), 0, history=2)
        for seq in range(1, 6):
            replayer.apply_batch(seq, [InsertEdge(seq, seq + 1)])
        assert replayer.oldest_rewindable == 3
        with pytest.raises(LookupError):
            replayer.answer_at(2, lambda g: None)
        with pytest.raises(LookupError):
            replayer.answer_at(6, lambda g: None)  # ahead of the stream
        # The newest retained states stay reachable.
        assert replayer.answer_at(3, lambda g: g.has_vertex(5)) is False
        assert replayer.answer_at(5, lambda g: g.has_vertex(5)) is True

    def test_repeated_time_travel_recaptures_thunks(self):
        # Two rewinds through the same batch: the second must undo the
        # *re-applied* updates, not replay spent thunks.
        replayer = GraphReplayer(Graph.from_edges([(0, 1)]), 0, history=8)
        replayer.apply_batch(1, [InsertEdge(1, 2)])
        replayer.apply_batch(2, [DeleteEdge(0, 1)])
        for _ in range(3):
            assert replayer.answer_at(1, lambda g: g.has_edge(0, 1)) is True
            assert replayer.answer_at(0, lambda g: g.has_edge(1, 2)) is False
        assert not replayer.graph.has_edge(0, 1)
        assert replayer.graph.has_edge(1, 2)

    @pytest.mark.parametrize("maker,flags", [
        (lambda: erdos_renyi(16, 30, seed=2), {}),
        (lambda: random_directed(16, 30, seed=2), {"directed": True}),
        (lambda: random_weighted(16, 30, seed=2), {"weighted": True}),
    ])
    def test_time_travel_answers_match_on_every_graph_flavour(self, maker, flags):
        g = maker()
        replayer = GraphReplayer(g.copy(), 0, history=8)
        vs = sorted(g.vertices())
        if flags.get("weighted"):
            batches = [[DeleteEdge(*next(iter(sorted((u, v) for u, v, _ in g.edges()))))],
                       [InsertEdge(vs[0], vs[-1], weight=2.5)]]
        else:
            batches = [[DeleteEdge(*next(iter(sorted(g.edges()))))],
                       [InsertEdge(vs[0], vs[-1])]]
        for seq, batch in enumerate(batches, start=1):
            replayer.apply_batch(seq, batch)
        fresh = g.copy()
        for seq in range(3):
            if seq:
                for update in batches[seq - 1]:
                    apply_graph_update(fresh, update)
            for s, t in [(vs[0], vs[-1]), (vs[1], vs[2])]:
                assert replayer.answer_at(
                    seq, lambda graph: baseline_answer(graph, s, t, **flags)
                ) == baseline_answer(fresh, s, t, **flags)
