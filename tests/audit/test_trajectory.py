"""Perf-trajectory history: record_run, load_history, drift_report."""

import json

import pytest

from repro.audit import drift_report, load_history, record_run
from repro.bench.tables import ExperimentResult

METRIC = "update_latency.insert.mean_s"


def make_result(name="micro", extra=None):
    result = ExperimentResult(name=name, description="d")
    result.extra.update(extra or {})
    return result


def record_micro(path, mean_s, **kwargs):
    extra = {"update_latency": {"insert": {"mean": mean_s}}}
    return record_run(path, make_result(extra=extra), **kwargs)


class TestRecordRun:
    def test_appends_one_jsonl_entry_with_tracked_metrics(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        entry = record_micro(path, 10.0, profile="quick", seed=7)
        assert entry["experiment"] == "micro"
        assert entry["profile"] == "quick"
        assert entry["seed"] == 7
        assert METRIC in entry["metrics"]
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == entry

    def test_untracked_experiment_writes_nothing(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        assert record_run(path, make_result(name="nosuch")) is None
        assert not path.exists()

    def test_append_only(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record_micro(path, 10.0)
        record_micro(path, 11.0)
        assert len(path.read_text().splitlines()) == 2

    def test_recorded_at_is_deterministic_when_pinned(self, tmp_path):
        entry = record_micro(tmp_path / "h.jsonl", 10.0, recorded_at=0)
        assert entry["recorded_at"] == "1970-01-01T00:00:00Z"


class TestLoadHistory:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == ([], 0)

    def test_round_trips_recorded_entries(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record_micro(path, 10.0)
        record_micro(path, 12.0)
        entries, skipped = load_history(path)
        assert skipped == 0
        assert [e["experiment"] for e in entries] == ["micro", "micro"]

    def test_malformed_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record_micro(path, 10.0)
        with open(path, "a") as f:
            f.write("{not json\n")        # corrupt merge artifact
            f.write('"a bare string"\n')  # json, wrong shape
            f.write('{"no": "experiment key"}\n')
            f.write("\n")                 # blank lines are not an error
        record_micro(path, 11.0)
        entries, skipped = load_history(path)
        assert len(entries) == 2
        assert skipped == 3


class TestDriftReport:
    def test_empty_history_is_a_notice_not_a_pass(self):
        regressions, lines, skipped = drift_report([])
        assert regressions == []
        assert any("history is empty" in line for line in lines)
        assert skipped == [{
            "experiment": None,
            "metric": None,
            "reason": "history is empty — nothing to compare",
        }]

    def test_single_run_has_no_baseline_window(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record_micro(path, 10.0)
        entries, _ = load_history(path)
        regressions, lines, skipped = drift_report(entries)
        assert regressions == []
        assert any("no baseline window yet" in line for line in lines)
        assert [s["experiment"] for s in skipped] == ["micro"]
        assert "no baseline window" in skipped[0]["reason"]

    def test_steady_metrics_pass(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        for us in (10.0, 10.5, 9.8, 10.1):
            record_micro(path, us)
        entries, _ = load_history(path)
        regressions, lines, skipped = drift_report(entries, tolerance=0.5)
        assert regressions == []
        assert skipped == []
        assert any("ok" in line or "improved" in line for line in lines)

    def test_lower_is_better_regression_flagged(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        for us in (10.0, 10.0, 30.0):  # latest tripled: +200% > 50%
            record_micro(path, us)
        entries, _ = load_history(path)
        regressions, _, _ = drift_report(entries, tolerance=0.5)
        assert [r["metric"] for r in regressions] == [METRIC]
        r = regressions[0]
        assert r["baseline"] == pytest.approx(10.0)
        assert r["current"] == pytest.approx(30.0)
        assert r["change"] == pytest.approx(2.0)

    def test_direction_aware_improvement_is_not_a_regression(self, tmp_path):
        # For a lower-is-better metric, dropping is an improvement.
        path = tmp_path / "hist.jsonl"
        for us in (30.0, 30.0, 10.0):
            record_micro(path, us)
        entries, _ = load_history(path)
        regressions, lines, skipped = drift_report(entries, tolerance=0.5)
        assert regressions == []
        assert skipped == []
        assert any("improved" in line for line in lines)

    def test_rolling_window_forgets_ancient_runs(self, tmp_path):
        # Ancient fast runs outside the window must not condemn a stable
        # present: baseline is the mean of the `window` runs before last.
        path = tmp_path / "hist.jsonl"
        for us in (1.0, 1.0, 20.0, 20.0, 20.0, 20.0):
            record_micro(path, us)
        entries, _ = load_history(path)
        regressions, _, _ = drift_report(entries, window=3, tolerance=0.5)
        assert regressions == []
        # A wide-enough window still sees them.
        regressions, _, _ = drift_report(entries, window=5, tolerance=0.5)
        assert regressions != []

    def test_experiment_filter(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        for us in (10.0, 30.0):
            record_micro(path, us)
        entries, _ = load_history(path)
        regressions, lines, _ = drift_report(
            entries, tolerance=0.5, experiments=["other"]
        )
        assert regressions == []
        assert not any("micro." in line for line in lines)

    def test_zero_baseline_skipped_with_notice(self):
        entries = [
            {"experiment": "x",
             "metrics": {"m": {"value": 0.0, "direction": "lower"}}},
            {"experiment": "x",
             "metrics": {"m": {"value": 5.0, "direction": "lower"}}},
        ]
        regressions, lines, skipped = drift_report(entries)
        assert regressions == []
        assert any("baseline mean is 0" in line for line in lines)
        assert skipped == [{
            "experiment": "x",
            "metric": "m",
            "reason": "baseline mean is 0",
        }]

    def test_new_metric_has_no_history_notice(self):
        entries = [
            {"experiment": "x",
             "metrics": {"old": {"value": 1.0, "direction": "lower"}}},
            {"experiment": "x",
             "metrics": {"new": {"value": 1.0, "direction": "lower"}}},
        ]
        regressions, lines, skipped = drift_report(entries)
        assert regressions == []
        assert any("new metric" in line for line in lines)
        assert skipped == [{
            "experiment": "x",
            "metric": "new",
            "reason": "new metric — no baseline history",
        }]

    def test_healthy_multi_run_history_reports_no_skips(self, tmp_path):
        # The inverse guarantee: once a real baseline window exists and
        # every metric has history, the skipped channel must stay empty —
        # a green drift report then really did compare something.
        path = tmp_path / "hist.jsonl"
        for us in (10.0, 10.2, 9.9):
            record_micro(path, us)
        entries, _ = load_history(path)
        regressions, _, skipped = drift_report(entries, tolerance=0.5)
        assert regressions == []
        assert skipped == []
