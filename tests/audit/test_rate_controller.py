"""AuditRateController: holding the audit queue depth by retuning the rate."""

import pytest

from repro.audit import AuditRateController, AuditSampler


def controller(rate=0.5, **kw):
    sampler = AuditSampler(rate=rate, capacity=64, seed=0)
    kw.setdefault("cooldown", 1)
    return AuditRateController(sampler, **kw), sampler


class TestValidation:
    def test_target_lag(self):
        with pytest.raises(ValueError, match="target_lag"):
            controller(target_lag=0)

    def test_rate_band(self):
        with pytest.raises(ValueError, match="min_rate"):
            controller(min_rate=0.0)
        with pytest.raises(ValueError, match="min_rate"):
            controller(min_rate=0.5, max_rate=0.25)

    def test_cooldown(self):
        with pytest.raises(ValueError, match="cooldown"):
            controller(cooldown=0)


class TestControlLaw:
    def test_overshoot_halves(self):
        ctl, sampler = controller(rate=0.8, target_lag=10)
        assert ctl.observe(11) == pytest.approx(0.4)
        assert sampler.rate == pytest.approx(0.4)
        assert ctl.lowered == 1

    def test_undershoot_doubles(self):
        ctl, sampler = controller(rate=0.1, target_lag=10)
        assert ctl.observe(4) == pytest.approx(0.2)
        assert ctl.raised == 1

    def test_hysteresis_band_holds(self):
        ctl, sampler = controller(rate=0.5, target_lag=10)
        for lag in (5, 7, 10):
            assert ctl.observe(lag) == 0.5
        assert ctl.raised == ctl.lowered == 0

    def test_rate_clamped_to_band(self):
        ctl, sampler = controller(rate=0.002, target_lag=10,
                                  min_rate=0.001, max_rate=0.5)
        assert ctl.observe(100) == 0.001
        assert ctl.observe(100) == 0.001  # already at the floor: no churn
        assert ctl.lowered == 1
        for _ in range(20):
            ctl.observe(0)
        assert sampler.rate == 0.5

    def test_cooldown_spaces_adjustments(self):
        ctl, sampler = controller(rate=0.8, target_lag=10, cooldown=3)
        assert ctl.observe(100) == pytest.approx(0.4)  # first may adjust
        assert ctl.observe(100) == pytest.approx(0.4)  # held
        assert ctl.observe(100) == pytest.approx(0.4)  # held
        assert ctl.observe(100) == pytest.approx(0.2)

    def test_recovers_from_any_mistuning_in_log_steps(self):
        ctl, sampler = controller(rate=1.0, target_lag=8, min_rate=0.001)
        steps = 0
        while ctl.observe(1000) > 0.002:
            steps += 1
            assert steps < 16  # multiplicative: O(log) adjustments

    def test_set_rate_redraws_gate(self):
        # A sampler muted by rate 0.01 must start admitting promptly
        # after being turned up — the old geometric gap may be huge.
        sampler = AuditSampler(rate=0.01, capacity=64, seed=1)
        sampler.set_rate(1.0)
        sampler([((0, 1), (1, 1))], 1, "t", 0)
        assert sampler.pending() == 1

    def test_set_rate_validates(self):
        sampler = AuditSampler(rate=0.5)
        with pytest.raises(ValueError, match="rate"):
            sampler.set_rate(1.5)


class TestStats:
    def test_stats_shape(self):
        ctl, _ = controller(rate=0.5, target_lag=10)
        ctl.observe(100)
        stats = ctl.stats()
        assert stats["lowered"] == 1 and stats["observations"] == 1
        assert stats["rate"] == 0.25
