"""The shared divergence vocabulary: shapes, classification, the report."""

import pytest

from repro.audit import (
    COUNT_MISMATCH,
    DIST_MISMATCH,
    REFUSAL,
    SEVERITIES,
    Divergence,
    DivergenceReport,
    check_answer_shape,
    classify_divergence,
)
from repro.exceptions import AuditDivergenceError, ServeError

INF = float("inf")


def make_divergence(severity=COUNT_MISMATCH, seq=7):
    return Divergence(
        query=(1, 2), seq=seq, expected=(2, 3), got=(2, 4),
        backend="core", epoch=5, severity=severity, target="replica-1",
    )


class TestAnswerShape:
    @pytest.mark.parametrize("answer", [
        (0, 1), (3, 2), (INF, 0), (INF, None), (4, None), (0.5, 1),
    ])
    def test_sound_shapes(self, answer):
        assert check_answer_shape(answer) is None

    @pytest.mark.parametrize("answer", [
        None, 42, (1,), (1, 2, 3), "no",
        (INF, 1),          # unreachable with a path count
        (-1, 1),           # negative distance
        (None, 1),         # no distance at all
        (3, 0), (3, -2),   # finite distance with no paths
    ])
    def test_malformed_shapes(self, answer):
        assert check_answer_shape(answer) is not None


class TestClassification:
    def test_agreement_is_none(self):
        assert classify_divergence((2, 3), (2, 3)) is None
        assert classify_divergence((INF, 0), (INF, 0)) is None

    def test_distance_mismatch_beats_count(self):
        assert classify_divergence((2, 3), (3, 3)) == DIST_MISMATCH
        # Distance wrong AND count wrong still classifies by distance.
        assert classify_divergence((2, 3), (3, 9)) == DIST_MISMATCH

    def test_count_mismatch(self):
        assert classify_divergence((2, 3), (2, 4)) == COUNT_MISMATCH

    def test_malformed_served_answer_is_refusal(self):
        assert classify_divergence((2, 3), (2, 0)) == REFUSAL
        assert classify_divergence((2, 3), None) == REFUSAL
        assert classify_divergence((INF, 0), (INF, 5)) == REFUSAL

    def test_none_count_restricts_to_distances(self):
        # A distance-only side can never produce a count mismatch...
        assert classify_divergence((2, None), (2, 3)) is None
        assert classify_divergence((2, 3), (2, None)) is None
        # ...but distance mismatches still classify.
        assert classify_divergence((2, None), (4, None)) == DIST_MISMATCH

    def test_malformed_baseline_raises(self):
        with pytest.raises(AuditDivergenceError):
            classify_divergence((3, 0), (3, 1))

    def test_severity_order_most_severe_first(self):
        assert SEVERITIES == (REFUSAL, DIST_MISMATCH, COUNT_MISMATCH)


class TestDivergenceReport:
    def test_collects_and_summarizes(self):
        report = DivergenceReport()
        report.record(make_divergence(COUNT_MISMATCH))
        report.record(make_divergence(REFUSAL))
        assert len(report) == 2
        assert report.severities_seen() == [REFUSAL, COUNT_MISMATCH]
        summary = report.summary()
        assert summary["total"] == 2
        assert summary["by_severity"][REFUSAL] == 1
        assert len(summary["divergences"]) == 2

    def test_keep_caps_records_not_counters(self):
        report = DivergenceReport(keep=2)
        for _ in range(5):
            report.record(make_divergence())
        assert report.total == 5
        assert len(report.divergences) == 2

    def test_callable_sink(self):
        seen = []
        report = DivergenceReport(sink=seen.append)
        d = make_divergence()
        report.record(d)
        assert seen == [d]

    def test_raise_sink_fails_fast_with_seq(self):
        report = DivergenceReport(sink="raise")
        with pytest.raises(AuditDivergenceError) as excinfo:
            report.record(make_divergence(seq=42))
        assert excinfo.value.seq == 42
        assert len(excinfo.value.divergences) == 1

    def test_unknown_sink_rejected(self):
        with pytest.raises(AuditDivergenceError):
            DivergenceReport(sink="bogus")

    def test_raise_if_any(self):
        report = DivergenceReport()
        report.raise_if_any()  # empty: no-op
        report.record(make_divergence(seq=9))
        with pytest.raises(AuditDivergenceError) as excinfo:
            report.raise_if_any()
        assert excinfo.value.seq == 9

    def test_describe_names_the_essentials(self):
        line = make_divergence().describe()
        assert "(1, 2)" in line and "seq 7" in line
        assert "replica-1" in line and COUNT_MISMATCH in line


class TestAuditDivergenceError:
    def test_is_a_serve_error_with_payload(self):
        exc = AuditDivergenceError("boom", seq=3, divergences=["d"])
        assert isinstance(exc, ServeError)
        assert exc.seq == 3
        assert exc.divergences == ["d"]

    def test_defaults(self):
        exc = AuditDivergenceError("boom")
        assert exc.seq is None
        assert exc.divergences == []
