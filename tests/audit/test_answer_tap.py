"""The answer-tap hook: the sampler's attachment point on every read path."""

import tempfile

import pytest

from repro.audit import AuditSampler, corrupt_snapshot_wrapper
from repro.cluster import SPCCluster
from repro.engine import EngineConfig, SPCEngine
from repro.graph.generators import erdos_renyi
from repro.serve.service import ServeConfig, SPCService
from repro.workloads import InsertEdge


class RecordingTap:
    """Captures every tap call verbatim."""

    def __init__(self):
        self.calls = []

    def __call__(self, answered, seq, target, epoch):
        self.calls.append((list(answered), seq, target, epoch))


@pytest.fixture
def service(tmp_path):
    engine = SPCEngine(
        erdos_renyi(20, 50, seed=1), config=EngineConfig(backend="core")
    )
    svc = SPCService(
        engine,
        config=ServeConfig(publish_every=1, durability_dir=str(tmp_path)),
        overwrite=True,
    )
    yield svc
    svc.close()


class TestServiceTap:
    def test_query_taps_answer_with_consistency_point(self, service):
        tap = RecordingTap()
        service.set_answer_tap(tap)
        answer = service.query(0, 1)
        assert len(tap.calls) == 1
        answered, seq, target, epoch = tap.calls[0]
        assert answered == [((0, 1), answer)]
        assert target == "service"
        assert seq == service.snapshot().seq
        assert epoch == service.snapshot().epoch

    def test_query_many_taps_the_whole_batch_once(self, service):
        tap = RecordingTap()
        service.set_answer_tap(tap)
        pairs = [(0, 1), (1, 2), (2, 3)]
        answers = service.query_many(pairs)
        assert len(tap.calls) == 1
        answered, _, target, _ = tap.calls[0]
        assert answered == list(zip(pairs, answers))
        assert target == "service"

    def test_convenience_wrappers_route_through_the_tap(self, service):
        tap = RecordingTap()
        service.set_answer_tap(tap)
        service.distance(0, 1)
        service.count(0, 1)
        assert len(tap.calls) == 2

    def test_tap_sees_the_post_update_seq(self, service):
        tap = RecordingTap()
        service.set_answer_tap(tap)
        before = service.snapshot().seq
        service.submit(InsertEdge(0, 19))
        service.flush()
        service.query(0, 19)
        assert tap.calls[-1][1] > before

    def test_clearing_the_tap_stops_the_flow(self, service):
        tap = RecordingTap()
        service.set_answer_tap(tap)
        service.query(0, 1)
        service.set_answer_tap(None)
        service.query(0, 1)
        assert len(tap.calls) == 1

    def test_sampler_is_a_valid_tap(self, service):
        sampler = AuditSampler(rate=1.0, capacity=64, seed=0)
        service.set_answer_tap(sampler)
        answer = service.query(0, 1)
        (sample,) = sampler.take()
        assert (sample.s, sample.t) == (0, 1)
        assert sample.answer == answer
        assert sample.target == "service"


class TestRouterTap:
    @pytest.fixture
    def cluster(self):
        engine = SPCEngine(
            erdos_renyi(20, 50, seed=1), config=EngineConfig(backend="core")
        )
        with tempfile.TemporaryDirectory() as state_dir:
            with SPCCluster(
                engine, state_dir, replicas=2, overwrite=True
            ) as cluster:
                cluster.sync(timeout=20)
                yield cluster

    def test_routed_reads_tap_with_the_replica_name(self, cluster):
        tap = RecordingTap()
        cluster.router.set_answer_tap(tap)
        for _ in range(8):
            cluster.router.query(0, 1)
        answers, seq, name = cluster.router.query_many_tagged([(0, 1), (1, 2)])
        assert len(tap.calls) == 9
        targets = {call[2] for call in tap.calls}
        assert targets <= {"primary", "replica-0", "replica-1"}
        # The batch call taps once with the whole batch and the lease's
        # claimed consistency point.
        answered, tapped_seq, tapped_name, _ = tap.calls[-1]
        assert answered == list(zip([(0, 1), (1, 2)], answers))
        assert (tapped_seq, tapped_name) == (seq, name)

    def test_tagged_answers_and_tap_agree_on_the_claim(self, cluster):
        tap = RecordingTap()
        cluster.router.set_answer_tap(tap)
        answer, seq, name = cluster.router.query_tagged(0, 1)
        answered, tapped_seq, tapped_name, _ = tap.calls[-1]
        assert answered == [((0, 1), answer)]
        assert (tapped_seq, tapped_name) == (seq, name)

    def test_tap_observes_corrupted_answers_as_served(self, cluster):
        # The sampler must record what was *served*, not what is true —
        # otherwise the auditor would have nothing to catch.
        honest = cluster.router.query(0, 1)
        for replica in cluster.replicas.values():
            replica.set_snapshot_wrapper(corrupt_snapshot_wrapper("count"))
        tap = RecordingTap()
        cluster.router.set_answer_tap(tap)
        seen = set()
        for _ in range(12):
            cluster.router.query(0, 1)
            answered, _, target, _ = tap.calls[-1]
            if target != "primary":
                seen.add(answered[0][1])
        if seen:  # at least one read routed to a replica
            assert all(a != honest for a in seen)
