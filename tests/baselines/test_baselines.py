"""Unit tests for the baseline oracles."""

from repro.baselines import BFSCountingOracle, BiBFSCountingOracle, ReconstructionOracle
from repro.core import build_spc_index
from repro.graph import erdos_renyi, path_graph
from repro.verify import verify_espc

INF = float("inf")


class TestQueryOracles:
    def test_all_oracles_agree_with_index(self):
        g = erdos_renyi(25, 60, seed=1)
        index = build_spc_index(g)
        bfs = BFSCountingOracle(g)
        bibfs = BiBFSCountingOracle(g)
        for s in range(0, 25, 3):
            for t in range(1, 25, 4):
                expected = index.query(s, t)
                assert bfs.query(s, t) == expected
                assert bibfs.query(s, t) == expected

    def test_oracle_names(self):
        g = path_graph(3)
        assert BFSCountingOracle(g).name == "BFS"
        assert BiBFSCountingOracle(g).name == "BiBFS"
        assert ReconstructionOracle(g).name == "HP-SPC (rebuild)"


class TestReconstructionOracle:
    def test_insert_edge_rebuilds(self):
        oracle = ReconstructionOracle(path_graph(5))
        stats = oracle.insert_edge(0, 4)
        assert stats.elapsed > 0
        assert oracle.query(0, 4) == (1, 1)
        assert verify_espc(oracle.graph, oracle.index)

    def test_delete_edge_rebuilds(self):
        oracle = ReconstructionOracle(path_graph(5))
        oracle.delete_edge(2, 3)
        assert oracle.query(0, 4) == (INF, 0)
        assert verify_espc(oracle.graph, oracle.index)

    def test_vertex_operations(self):
        oracle = ReconstructionOracle(path_graph(3))
        oracle.insert_vertex(7, edges=[0, 2])
        assert oracle.query(7, 1) == (2, 2)
        oracle.delete_vertex(7)
        assert oracle.query(0, 2) == (2, 1)
        assert verify_espc(oracle.graph, oracle.index)

    def test_history_recorded(self):
        oracle = ReconstructionOracle(path_graph(4))
        oracle.insert_edge(0, 3)
        oracle.delete_edge(0, 3)
        assert oracle.history.updates == 2
        assert oracle.history.insertions == 1
        assert oracle.history.deletions == 1
