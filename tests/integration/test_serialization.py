"""Serialization round-trips for every index variant, including after churn."""

import json

from repro.core import SPCIndex, build_spc_index, dec_spc, inc_spc
from repro.directed import DirectedSPCIndex, build_directed_spc_index
from repro.graph import erdos_renyi, random_directed, random_weighted
from repro.weighted import WeightedSPCIndex, build_weighted_spc_index


def _roundtrip(payload):
    return json.loads(json.dumps(payload))


class TestUndirectedSerialization:
    def test_roundtrip_after_vertex_churn(self):
        g = erdos_renyi(20, 40, seed=1)
        index = build_spc_index(g)
        # Churn: delete a vertex (tombstones a rank), add another.
        victim = next(iter(sorted(g.vertices())))
        for u in list(g.neighbors(victim)):
            dec_spc(g, index, victim, u)
        g.remove_vertex(victim)
        index.drop_vertex_labels(victim)
        g.add_vertex(99)
        index.add_vertex(99)
        inc_spc(g, index, 99, next(iter(sorted(g.vertices()))))

        restored = SPCIndex.from_dict(_roundtrip(index.to_dict()))
        for s in g.vertices():
            for t in g.vertices():
                assert restored.query(s, t) == index.query(s, t)


class TestDirectedSerialization:
    def test_roundtrip(self):
        g = random_directed(15, 40, seed=2)
        index = build_directed_spc_index(g)
        restored = DirectedSPCIndex.from_dict(_roundtrip(index.to_dict()))
        for s in g.vertices():
            for t in g.vertices():
                assert restored.query(s, t) == index.query(s, t)

    def test_copy_independent(self):
        g = random_directed(10, 25, seed=3)
        index = build_directed_spc_index(g)
        clone = index.copy()
        clone.in_label_set(next(iter(g.vertices()))).clear()
        # The original is untouched.
        assert index.num_entries > clone.num_entries


class TestWeightedSerialization:
    def test_roundtrip(self):
        g = random_weighted(14, 30, max_weight=4, seed=4)
        index = build_weighted_spc_index(g)
        restored = WeightedSPCIndex.from_dict(_roundtrip(index.to_dict()))
        for s in g.vertices():
            for t in g.vertices():
                assert restored.query(s, t) == index.query(s, t)

    def test_copy_independent(self):
        g = random_weighted(10, 20, max_weight=3, seed=5)
        index = build_weighted_spc_index(g)
        clone = index.copy()
        v = next(iter(g.vertices()))
        clone.label_set(v).set(index.rank(v), 0, 99)
        assert index.label_set(v).get(index.rank(v)) != (0, 99)
