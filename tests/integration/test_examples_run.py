"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable: quickstart + 2+ scenarios


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples should print their findings"
