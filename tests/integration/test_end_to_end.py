"""End-to-end integration tests across the whole stack.

These run a realistic life cycle — dataset, index, query workload, hybrid
update stream, verification — through the public API only.
"""

import random

from repro import (
    DynamicSPC,
    bfs_counting_pair,
    bibfs_counting,
    build_spc_index,
    indexes_equivalent,
    verify_espc,
)
from repro.baselines import ReconstructionOracle
from repro.datasets import load_dataset
from repro.graph import barabasi_albert
from repro.workloads import hybrid_stream, random_pairs


class TestDatasetLifecycle:
    def test_eua_analogue_full_cycle(self):
        g = load_dataset("EUA")
        dyn = DynamicSPC(g)

        pairs = random_pairs(dyn.graph, 60, seed=1)
        for s, t in pairs:
            assert dyn.query(s, t) == bfs_counting_pair(dyn.graph, s, t)

        stream = hybrid_stream(dyn.graph, insertions=12, deletions=4, seed=2)
        dyn.apply_stream(stream)

        for s, t in random_pairs(dyn.graph, 60, seed=3):
            assert dyn.query(s, t) == bfs_counting_pair(dyn.graph, s, t)

    def test_dynamic_matches_reconstruction_oracle(self):
        g = barabasi_albert(120, attach=2, seed=4)
        dyn = DynamicSPC(g.copy())
        oracle = ReconstructionOracle(g.copy())

        stream = hybrid_stream(g, insertions=8, deletions=3, seed=5)
        for update in stream:
            update.apply(dyn)
            update.apply(oracle)
            for s, t in random_pairs(g, 25, seed=6):
                assert dyn.query(s, t) == oracle.query(s, t)

    def test_three_engines_agree_after_churn(self):
        g = barabasi_albert(150, attach=3, seed=7)
        dyn = DynamicSPC(g)
        rng = random.Random(8)
        vertices = sorted(g.vertices())

        # Vertex insertions with edges, deletions, and edge churn.
        dyn.insert_vertex(1000, edges=rng.sample(vertices, 3))
        dyn.insert_vertex(1001, edges=[1000, vertices[0]])
        dyn.delete_vertex(vertices[10])
        for _ in range(5):
            u, v = rng.sample(sorted(dyn.graph.vertices()), 2)
            if not dyn.graph.has_edge(u, v):
                dyn.insert_edge(u, v)
        for u, v in list(dyn.graph.edges())[:5]:
            dyn.delete_edge(u, v)

        for s, t in random_pairs(dyn.graph, 40, seed=9):
            expected = bfs_counting_pair(dyn.graph, s, t)
            assert dyn.query(s, t) == expected
            assert bibfs_counting(dyn.graph, s, t) == expected

    def test_serialization_survives_updates(self):
        from repro import SPCIndex

        g = barabasi_albert(80, attach=2, seed=10)
        dyn = DynamicSPC(g)
        dyn.insert_edge(0, 79) if not g.has_edge(0, 79) else None
        payload = dyn.index.to_dict()
        restored = SPCIndex.from_dict(payload)
        assert indexes_equivalent(dyn.index, restored, dyn.graph)

    def test_big_counts_do_not_overflow(self):
        # Stacked complete bipartite layers: counts grow multiplicatively
        # (4^6 ~ 4096 paths), well past toy sizes; Python ints keep exact.
        from repro.graph import Graph

        layers = 7
        width = 4
        g = Graph()
        ids = [[layer * width + i for i in range(width)] for layer in range(layers)]
        for layer in ids:
            for v in layer:
                g.add_vertex(v)
        g.add_vertex(1000)
        g.add_vertex(1001)
        for v in ids[0]:
            g.add_edge(1000, v)
        for v in ids[-1]:
            g.add_edge(1001, v)
        for a, b in zip(ids, ids[1:]):
            for u in a:
                for v in b:
                    g.add_edge(u, v)
        index = build_spc_index(g)
        d, c = index.query(1000, 1001)
        assert d == layers + 1
        assert c == width ** (layers + 1) // width  # 4^7 paths
        assert verify_espc(g, index, sample_pairs=[(1000, 1001)])
