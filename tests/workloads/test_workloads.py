"""Unit tests for workload generators."""

import pytest

from repro.exceptions import WorkloadError
from repro.graph import complete_graph, erdos_renyi, path_graph
from repro.workloads import (
    DeleteEdge,
    InsertEdge,
    edge_degree,
    hybrid_stream,
    random_deletions,
    random_insertions,
    random_pairs,
    skewed_deletions,
    skewed_insertions,
    vertex_churn,
)


class TestInsertionWorkloads:
    def test_insertions_are_absent_and_distinct(self):
        g = erdos_renyi(30, 60, seed=1)
        updates = random_insertions(g, 20, seed=2)
        assert len(updates) == 20
        seen = set()
        for upd in updates:
            assert isinstance(upd, InsertEdge)
            assert not g.has_edge(upd.u, upd.v)
            key = (upd.u, upd.v)
            assert key not in seen
            seen.add(key)

    def test_insertions_deterministic(self):
        g = erdos_renyi(30, 60, seed=1)
        assert random_insertions(g, 10, seed=3) == random_insertions(g, 10, seed=3)

    def test_dense_graph_raises(self):
        g = complete_graph(5)
        with pytest.raises(WorkloadError):
            random_insertions(g, 3, seed=0)

    def test_undo(self):
        upd = InsertEdge(1, 2)
        assert upd.undo() == DeleteEdge(1, 2)
        assert DeleteEdge(1, 2).undo() == InsertEdge(1, 2)


class TestDeletionWorkloads:
    def test_deletions_exist_and_distinct(self):
        g = erdos_renyi(30, 60, seed=4)
        updates = random_deletions(g, 15, seed=5)
        assert len(updates) == 15
        assert len(set(updates)) == 15
        for upd in updates:
            assert g.has_edge(upd.u, upd.v)

    def test_too_many_deletions(self):
        g = path_graph(4)
        with pytest.raises(WorkloadError):
            random_deletions(g, 10, seed=0)


class TestHybridAndSkewed:
    def test_hybrid_stream_composition(self):
        g = erdos_renyi(40, 90, seed=6)
        stream = hybrid_stream(g, insertions=20, deletions=5, seed=7)
        assert len(stream) == 25
        ins = [u for u in stream if isinstance(u, InsertEdge)]
        dels = [u for u in stream if isinstance(u, DeleteEdge)]
        assert len(ins) == 20 and len(dels) == 5
        # Deletions are interleaved, not clumped at the end.
        first_del = next(i for i, u in enumerate(stream) if isinstance(u, DeleteEdge))
        assert first_del < len(stream) - 5

    def test_hybrid_stream_no_deletions(self):
        g = erdos_renyi(20, 40, seed=8)
        stream = hybrid_stream(g, insertions=5, deletions=0, seed=8)
        assert len(stream) == 5

    def test_skewed_insertions_bias(self):
        g = erdos_renyi(60, 140, seed=9)
        high = skewed_insertions(g, 25, seed=10, bucket="high")
        low = skewed_insertions(g, 25, seed=10, bucket="low")
        mean_high = sum(edge_degree(g, u.u, u.v) for u in high) / 25
        mean_low = sum(edge_degree(g, u.u, u.v) for u in low) / 25
        assert mean_high > mean_low

    def test_skewed_deletions_bias(self):
        g = erdos_renyi(60, 140, seed=11)
        high = skewed_deletions(g, 20, seed=12, bucket="high")
        low = skewed_deletions(g, 20, seed=12, bucket="low")
        mean_high = sum(edge_degree(g, u.u, u.v) for u in high) / 20
        mean_low = sum(edge_degree(g, u.u, u.v) for u in low) / 20
        assert mean_high >= mean_low

    def test_skewed_uniform_bucket(self):
        g = erdos_renyi(30, 60, seed=13)
        assert skewed_insertions(g, 5, seed=1, bucket="uniform") == random_insertions(
            g, 5, seed=1
        )


class TestVertexChurnAndQueries:
    def test_vertex_churn_shapes(self):
        g = erdos_renyi(20, 40, seed=14)
        updates = vertex_churn(g, inserts=5, deletes=3, seed=15)
        assert len(updates) == 8

    def test_vertex_churn_applies(self):
        from repro.core import DynamicSPC

        g = erdos_renyi(15, 30, seed=16)
        dyn = DynamicSPC(g.copy())
        for upd in vertex_churn(g, inserts=3, deletes=2, seed=17):
            try:
                dyn.apply(upd)
            except Exception as exc:  # deleted vertex may be a churn target
                from repro.exceptions import VertexNotFound

                assert isinstance(exc, VertexNotFound)
        assert dyn.check()

    def test_random_pairs(self):
        g = erdos_renyi(20, 40, seed=18)
        pairs = random_pairs(g, 50, seed=19, distinct=True)
        assert len(pairs) == 50
        assert all(s != t for s, t in pairs)

    def test_random_pairs_tiny_graph(self):
        g = path_graph(1)
        with pytest.raises(WorkloadError):
            random_pairs(g, 3)
