"""Weight-aware stream generation: weighted graphs get weighted updates."""

import pytest

import repro
from repro.exceptions import WorkloadError
from repro.graph.generators import erdos_renyi, random_weighted
from repro.workloads import (
    DeleteEdge,
    InsertEdge,
    SetWeight,
    hybrid_stream,
    is_weighted_graph,
    random_deletions,
    random_insertions,
    random_weight_changes,
    skewed_deletions,
    skewed_insertions,
)


@pytest.fixture
def wg():
    return random_weighted(20, 45, seed=4)


@pytest.fixture
def ug():
    return erdos_renyi(20, 45, seed=4)


class TestDetection:
    def test_weighted_detected(self, wg, ug):
        assert is_weighted_graph(wg)
        assert not is_weighted_graph(ug)


class TestInsertions:
    def test_weighted_insertions_carry_weights(self, wg):
        ups = random_insertions(wg, 8, seed=1)
        assert all(isinstance(u, InsertEdge) for u in ups)
        assert all(u.weight is not None for u in ups)
        assert all(1 <= u.weight <= 10 for u in ups)

    def test_unweighted_insertions_stay_bare(self, ug):
        assert all(u.weight is None for u in random_insertions(ug, 8, seed=1))

    def test_weight_range_respected(self, wg):
        ups = random_insertions(wg, 5, seed=2, weight_range=(3, 3))
        assert {u.weight for u in ups} == {3}

    def test_skewed_insertions_carry_weights(self, wg):
        assert all(
            u.weight is not None for u in skewed_insertions(wg, 5, seed=1)
        )


class TestDeletions:
    def test_weighted_deletions_record_weight(self, wg):
        for u in random_deletions(wg, 5, seed=1):
            assert u.weight == wg.weight(u.u, u.v)
            undone = u.undo()
            assert isinstance(undone, InsertEdge)
            assert undone.weight == u.weight

    def test_skewed_deletions_record_weight(self, wg):
        for u in skewed_deletions(wg, 5, seed=1):
            assert u.weight == wg.weight(u.u, u.v)

    def test_insert_undo_round_trips_weight(self, wg):
        ins = random_insertions(wg, 3, seed=7)[0]
        assert ins.undo().weight == ins.weight
        assert ins.undo().undo() == ins

    def test_unweighted_deletions_stay_bare(self, ug):
        assert all(u.weight is None for u in random_deletions(ug, 5, seed=1))


class TestWeightChanges:
    def test_changes_target_existing_edges(self, wg):
        for u in random_weight_changes(wg, 6, seed=1):
            assert isinstance(u, SetWeight)
            assert wg.has_edge(u.u, u.v)
            assert u.weight != wg.weight(u.u, u.v)  # never a no-op

    def test_exclusion(self, wg):
        dels = random_deletions(wg, 5, seed=2)
        excluded = {(d.u, d.v) for d in dels}
        for u in random_weight_changes(wg, 6, seed=1, exclude=excluded):
            assert (u.u, u.v) not in excluded

    def test_rejected_on_unweighted(self, ug):
        with pytest.raises(WorkloadError):
            random_weight_changes(ug, 3)

    def test_single_value_range_stays_in_range(self, wg):
        # A (k, k) range cannot dodge an edge already at weight k; it must
        # emit k (a harmless engine no-op), never an out-of-range weight.
        u, v, _ = sorted(wg.edges())[0]
        wg.set_weight(u, v, 7)
        ups = random_weight_changes(wg, wg.num_edges, seed=3,
                                    weight_range=(7, 7))
        assert {w.weight for w in ups} == {7}


class TestHybridStream:
    def test_weighted_stream_mixes_all_kinds(self, wg):
        stream = hybrid_stream(wg, insertions=12, deletions=3, seed=0)
        kinds = {type(u) for u in stream}
        assert kinds == {InsertEdge, DeleteEdge, SetWeight}
        assert sum(isinstance(u, SetWeight) for u in stream) == 3
        assert all(
            u.weight is not None for u in stream if isinstance(u, InsertEdge)
        )

    def test_unweighted_stream_unchanged(self, ug):
        stream = hybrid_stream(ug, insertions=12, deletions=3, seed=0)
        assert {type(u) for u in stream} == {InsertEdge, DeleteEdge}

    def test_set_weights_rejected_on_unweighted(self, ug):
        with pytest.raises(WorkloadError):
            hybrid_stream(ug, insertions=5, deletions=1, set_weights=2)

    def test_stream_applies_to_weighted_engine(self, wg):
        engine = repro.open(wg)
        stream = hybrid_stream(wg, insertions=10, deletions=3, seed=1)
        engine.apply_stream(stream)
        assert engine.check()
        assert engine.check_invariants()

    def test_explicit_set_weight_count(self, wg):
        stream = hybrid_stream(wg, insertions=10, deletions=2, seed=0,
                               set_weights=5)
        assert sum(isinstance(u, SetWeight) for u in stream) == 5
