"""The public API surface: everything in __all__ imports and is documented."""

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstrings_on_public_callables(self):
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_module_docstring_quickstart_is_true(self):
        # The usage example in the package docstring must actually work.
        from repro import DynamicSPC, Graph

        g = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
        dyn = DynamicSPC(g)
        assert dyn.query(0, 2) == (2, 2)
        dyn.insert_edge(0, 2)
        dyn.delete_edge(0, 1)
        assert dyn.check()

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.bench
        import repro.datasets
        import repro.directed
        import repro.sd
        import repro.weighted
        import repro.workloads

        assert repro.bench.PAPER_SET
