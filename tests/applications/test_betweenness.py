"""Tests for betweenness analytics, cross-checked against networkx."""

import pytest

from repro.applications import (
    group_betweenness,
    pair_dependency,
    top_k_betweenness,
    vertex_betweenness,
)
from repro.core import build_spc_index
from repro.graph import Graph, erdos_renyi, path_graph, star_graph, watts_strogatz


class TestVertexBetweenness:
    def test_path_graph_middle_dominates(self):
        g = path_graph(5)
        index = build_spc_index(g)
        scores = vertex_betweenness(index)
        assert scores[2] > scores[1] == scores[3] > scores[0]

    def test_star_center(self):
        g = star_graph(6)
        index = build_spc_index(g)
        scores = vertex_betweenness(index)
        # Center carries every one of the C(5,2) leaf pairs.
        assert scores[0] == 10
        assert all(scores[v] == 0 for v in range(1, 6))

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        import networkx as nx

        g = erdos_renyi(16, 32, seed=seed)
        index = build_spc_index(g)
        ours = vertex_betweenness(index)
        nxg = nx.Graph(list(g.edges()))
        nxg.add_nodes_from(g.vertices())
        theirs = nx.betweenness_centrality(nxg, normalized=False)
        for v in g.vertices():
            assert ours[v] == pytest.approx(theirs[v]), f"seed={seed} v={v}"

    def test_top_k(self):
        g = path_graph(7)
        index = build_spc_index(g)
        top = top_k_betweenness(index, k=2)
        assert top[0][0] == 3  # the middle vertex


class TestPairDependency:
    def test_all_paths_through(self):
        g = path_graph(3)
        index = build_spc_index(g)
        assert pair_dependency(index, 0, 2, 1) == 1.0

    def test_half_paths_through(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        index = build_spc_index(g)
        assert pair_dependency(index, 0, 3, 1) == 0.5

    def test_endpoints_zero(self):
        g = path_graph(3)
        index = build_spc_index(g)
        assert pair_dependency(index, 0, 2, 0) == 0.0


class TestGroupBetweenness:
    def test_single_vertex_group_matches_centrality(self):
        g = watts_strogatz(20, k=4, rewire_prob=0.1, seed=2)
        index = build_spc_index(g)
        scores = vertex_betweenness(index)
        for v in list(g.vertices())[:5]:
            assert group_betweenness(g, index, [v]) == pytest.approx(scores[v])

    def test_group_at_least_best_member(self):
        g = erdos_renyi(15, 30, seed=3)
        index = build_spc_index(g)
        scores = vertex_betweenness(index)
        ranked = sorted(scores, key=scores.get, reverse=True)
        pair = ranked[:2]
        b_group = group_betweenness(g, index, pair)
        assert b_group >= max(scores[pair[0]], scores[pair[1]]) - 1e-9

    def test_cut_group_captures_all_pairs(self):
        # Removing the only middle vertex of a path intercepts every pair
        # crossing it.
        g = path_graph(5)
        index = build_spc_index(g)
        # Pairs crossing vertex 2: (0,3), (0,4), (1,3), (1,4) -> B = 4.
        assert group_betweenness(g, index, [2]) == pytest.approx(4.0)

    def test_restricted_pairs(self):
        g = path_graph(5)
        index = build_spc_index(g)
        assert group_betweenness(g, index, [2], pairs=[(0, 4)]) == 1.0
        assert group_betweenness(g, index, [2], pairs=[(0, 1)]) == 0.0
