"""Tests for the recommendation helpers."""

from repro.applications import (
    mutual_friend_candidates,
    rank_pairs_by_affinity,
    recommend_friends,
)
from repro.core import DynamicSPC, build_spc_index
from repro.graph import Graph, powerlaw_cluster


def intro_graph():
    """The paper's Figure 1 graph H: a-v2/v4-c paths, a-v1-b path.

    Vertices: a, b, c, v1..v4.  spc(a, c) = 3 > spc(a, b) = 1 at equal
    distance 2, so c outranks b as a friend recommendation for a.
    """
    return Graph.from_edges([
        ("a", "v1"), ("v1", "b"),
        ("a", "v2"), ("v2", "c"),
        ("a", "v3"), ("v3", "c"),
        ("a", "v4"), ("v4", "c"),
    ])


class TestIntroExample:
    def test_c_outranks_b(self):
        g = intro_graph()
        index = build_spc_index(g)
        recs = recommend_friends(g, index, "a", k=2)
        assert recs[0] == ("c", 3)
        assert recs[1] == ("b", 1)

    def test_candidates_at_radius(self):
        g = intro_graph()
        index = build_spc_index(g)
        cands = dict(mutual_friend_candidates(g, index, "a"))
        assert cands == {"b": 1, "c": 3}

    def test_affinity_ranking(self):
        g = intro_graph()
        index = build_spc_index(g)
        ranked = rank_pairs_by_affinity(index, [("a", "b"), ("a", "c"), ("a", "v1")])
        assert ranked[0] == ("a", "v1")   # distance 1 first
        assert ranked[1] == ("a", "c")    # then more paths at distance 2
        assert ranked[2] == ("a", "b")


class TestDynamicRecommendation:
    def test_recommendations_follow_updates(self):
        g = powerlaw_cluster(120, attach=3, triangle_prob=0.5, seed=9)
        dyn = DynamicSPC(g)
        user = max(g.vertices(), key=g.degree)
        recs = recommend_friends(dyn.graph, dyn, user, k=3)
        assert recs
        top = recs[0][0]
        dyn.insert_edge(user, top)
        new_recs = recommend_friends(dyn.graph, dyn, user, k=3)
        assert all(cand != top for cand, _ in new_recs)

    def test_counts_are_mutual_friends_at_radius_2(self):
        g = powerlaw_cluster(80, attach=2, triangle_prob=0.4, seed=11)
        index = build_spc_index(g)
        user = next(iter(g.vertices()))
        for cand, count in mutual_friend_candidates(g, index, user):
            mutual = len(set(g.neighbors(user)) & set(g.neighbors(cand)))
            assert count == mutual
