"""Replica-aware batch planning in ClusterRouter.query_many."""

import random

import pytest

import repro
from repro.cluster import SPCCluster
from repro.exceptions import ClusterError
from repro.graph.generators import erdos_renyi
from repro.workloads import InsertEdge


@pytest.fixture()
def fleet(tmp_path):
    g = erdos_renyi(32, 75, seed=11)
    engine = repro.open(g)
    with SPCCluster(
        engine, str(tmp_path), replicas=3, parallel_threshold=16
    ) as c:
        c.submit(InsertEdge(0, 31))
        c.sync()
        yield c, engine


def some_pairs(n, vmax=32, seed=0):
    rng = random.Random(seed)
    return [(rng.randrange(vmax), rng.randrange(vmax)) for _ in range(n)]


class TestQueryManySplit:
    def test_large_batch_matches_point_reads(self, fleet):
        c, _engine = fleet
        pairs = some_pairs(120)
        batch = c.router.query_many(pairs)
        assert batch == [c.router.query(s, t) for s, t in pairs]

    def test_large_batch_spreads_over_replicas(self, fleet):
        c, _engine = fleet
        c.router.query_many(some_pairs(300))
        routed = c.router.stats()["routed"]
        assert sum(1 for n in routed.values() if n > 0) >= 2

    def test_small_batch_stays_single_lease(self, fleet):
        c, _engine = fleet
        before = c.router.stats()["routed"]
        c.router.query_many(some_pairs(5))
        after = c.router.stats()["routed"]
        leases = sum(after.values()) - sum(before.values())
        assert leases <= 1  # primary fallback would show 0 here

    def test_single_healthy_replica_stays_single_lease(self, tmp_path):
        g = erdos_renyi(16, 34, seed=3)
        with SPCCluster(
            repro.open(g), str(tmp_path), replicas=1, parallel_threshold=8
        ) as c:
            c.sync()
            pairs = some_pairs(40, vmax=16)
            assert c.router.query_many(pairs) == [
                c.router.query(s, t) for s, t in pairs
            ]

    def test_split_respects_min_seq(self, fleet):
        c, _engine = fleet
        c.submit(InsertEdge(1, 30))
        seq = c.sync()
        answers = c.router.query_many(some_pairs(100), min_seq=seq)
        assert len(answers) == 100

    def test_tap_attributes_each_sub_batch_to_its_snapshot(self, fleet):
        c, _engine = fleet
        seen = []
        c.router.set_answer_tap(
            lambda answered, seq, target, epoch:
                seen.append((len(answered), seq, target))
        )
        pairs = some_pairs(120)
        c.router.query_many(pairs)
        assert sum(n for n, _s, _t in seen) == len(pairs)
        assert all(target for _n, _s, target in seen)

    def test_query_many_tagged_never_splits(self, fleet):
        c, _engine = fleet
        answers, seq, name = c.router.query_many_tagged(some_pairs(200))
        # one lease => one claimed seq and one serving target for all 200
        assert len(answers) == 200 and isinstance(name, str) and seq >= 0

    def test_threshold_validation(self, tmp_path):
        g = erdos_renyi(8, 12, seed=0)
        with pytest.raises(ClusterError, match="parallel_threshold"):
            SPCCluster(repro.open(g), str(tmp_path), parallel_threshold=1)
