"""SPCCluster end-to-end: replication, sessions, faults, the harness.

The stress test at the bottom is the acceptance bar of the subsystem: on
every backend family, kill a replica mid-stream, crash-recover it from
checkpoint + WAL tail, require it to converge to the primary's seq, and
audit *every* answer any replica ever served against progressive WAL
replay at that answer's claimed seq.
"""

import pytest

from repro.cluster import ClusterConfig, SPCCluster, cluster, run_cluster_loadgen
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import ClusterError
from repro.graph.generators import erdos_renyi, random_directed, random_weighted
from repro.workloads import random_insertions

_GRAPH_MAKERS = {
    "core": erdos_renyi,
    "sd": erdos_renyi,
    "directed": random_directed,
    "weighted": random_weighted,
}

ALL_BACKENDS = ("core", "directed", "weighted", "sd")


def _cluster(tmp_path, backend="core", n=40, m=90, seed=3, **overrides):
    graph = _GRAPH_MAKERS[backend](n, m, seed=seed)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    return SPCCluster(engine, str(tmp_path), **overrides)


class TestClusterBasics:
    def test_replicas_answer_like_the_primary_after_sync(self, tmp_path):
        with _cluster(tmp_path, replicas=2) as c:
            insertions = random_insertions(c.primary.engine.graph, 12, seed=1)
            c.submit_many(insertions)
            seq = c.sync()
            assert seq == c.primary.applied_seq
            pairs = [(u.u, u.v) for u in insertions]
            expected = c.primary.query_many(pairs)
            for replica in c.replicas.values():
                assert replica.query_many(pairs) == expected
                assert replica.applied_seq == seq

    def test_routed_reads_spread_across_replicas(self, tmp_path):
        with _cluster(tmp_path, replicas=2, policy="round_robin") as c:
            c.sync()
            for _ in range(10):
                c.query(0, 1)
            routed = c.router.stats()["routed"]
            assert all(count > 0 for count in routed.values())

    def test_session_read_your_writes(self, tmp_path):
        with _cluster(tmp_path, replicas=2,
                      policy="bounded_staleness", staleness_delta=4) as c:
            session = c.session()
            insertions = random_insertions(c.primary.engine.graph, 6, seed=2)
            for update in insertions:
                ticket = session.submit(update)
                acked = ticket.ack()
                assert acked == ticket.ack()  # idempotent
                assert session.last_acked_seq == acked
                # the session must observe its own write immediately,
                # whichever target the router picks
                assert session.query(update.u, update.v)[0] == 1
            tagged = session.query_tagged(insertions[0].u, insertions[0].v)
            assert tagged[1] >= session.last_acked_seq

    def test_kill_restart_converges_and_router_routes_around(self, tmp_path):
        with _cluster(tmp_path, replicas=2) as c:
            insertions = random_insertions(c.primary.engine.graph, 12, seed=4)
            c.submit_many(insertions[:6])
            c.sync()
            c.kill_replica("replica-0")
            assert not c.replicas["replica-0"].healthy
            for _ in range(8):  # reads keep flowing during the outage
                c.query(0, 1)
            assert c.router.stats()["routed"]["replica-0"] == 0
            c.submit_many(insertions[6:])
            c.flush()
            replica = c.restart_replica("replica-0")
            assert replica.catch_up(c.primary.applied_seq, timeout=10.0)
            seq = c.sync()
            pairs = [(u.u, u.v) for u in insertions]
            assert replica.query_many(pairs) == c.primary.query_many(pairs)
            assert replica.applied_seq == seq

    def test_cluster_survives_primary_compaction(self, tmp_path):
        with _cluster(tmp_path, replicas=2) as c:
            insertions = random_insertions(c.primary.engine.graph, 12, seed=5)
            c.submit_many(insertions[:6])
            c.sync()
            c.checkpoint(truncate_wal=True)
            c.submit_many(insertions[6:])
            seq = c.sync()
            pairs = [(u.u, u.v) for u in insertions]
            expected = c.primary.query_many(pairs)
            for replica in c.replicas.values():
                assert replica.query_many(pairs) == expected
                assert replica.applied_seq == seq

    def test_mixed_family_fleet(self, tmp_path):
        with _cluster(tmp_path, replicas=2,
                      replica_backends=(None, "sd")) as c:
            insertions = random_insertions(c.primary.engine.graph, 8, seed=6)
            c.submit_many(insertions)
            c.sync()
            assert c.replicas["replica-0"].backend_name == "core"
            assert c.replicas["replica-1"].backend_name == "sd"
            s, t = insertions[0].u, insertions[0].v
            sd, spc = c.primary.query(s, t)
            assert c.replicas["replica-0"].query(s, t) == (sd, spc)
            assert c.replicas["replica-1"].query(s, t) == (sd, None)

    def test_unknown_replica_name_raises(self, tmp_path):
        with _cluster(tmp_path, replicas=1) as c:
            with pytest.raises(ClusterError, match="no replica named"):
                c.kill_replica("replica-9")

    def test_config_validation(self):
        with pytest.raises(ClusterError, match="at least one replica"):
            ClusterConfig(replicas=0)
        with pytest.raises(ClusterError, match="replica_backends"):
            ClusterConfig(replicas=2, replica_backends=("sd",))

    def test_convenience_constructor_accepts_graphs(self, tmp_path):
        graph = erdos_renyi(30, 60, seed=7)
        with cluster(graph, str(tmp_path), replicas=1) as c:
            c.sync()
            assert c.primary.engine.backend_name == "core"
            assert c.query(0, 1) == c.primary.query(0, 1)

    def test_close_is_idempotent(self, tmp_path):
        c = _cluster(tmp_path, replicas=1)
        c.close()
        c.close()


class TestFaultInjectionStress:
    """The acceptance stress: all four backends, kill + catch-up, and the
    progressive-replay audit of every concurrently served answer."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_kill_and_catch_up_consistency(self, backend):
        report = run_cluster_loadgen(
            backend=backend,
            replicas=2,
            readers=3,
            duration=0.8,
            n=90,
            m=240,
            churn=16,
            seed=11,
            policy="bounded_staleness",
            staleness_delta=16,
        )
        assert report["consistency_problems"] == []
        assert report["reads"] > 0
        assert report["answers_audited"] > 0
        fault = report["fault_injection"]
        assert fault.get("converged") is True
        assert fault["restarted_at_seq"] >= fault["killed_at_seq"]

    def test_strict_mode_raises_on_injected_inconsistency(self, monkeypatch):
        from repro.cluster import loadgen as cl

        def poisoned(state_dir, initial_payload, served, problems, backend):
            problems.append("poisoned audit result")
            from repro.audit import DivergenceReport

            return DivergenceReport()

        monkeypatch.setattr(cl, "_verify_against_replay", poisoned)
        with pytest.raises(ClusterError, match="poisoned"):
            run_cluster_loadgen(
                backend="core", replicas=1, readers=1, duration=0.2,
                n=50, m=120, churn=8, inject_fault=False,
            )

    def test_non_strict_returns_problems(self, monkeypatch):
        from repro.cluster import loadgen as cl

        def poisoned(state_dir, initial_payload, served, problems, backend):
            problems.append("poisoned audit result")
            from repro.audit import DivergenceReport

            return DivergenceReport()

        monkeypatch.setattr(cl, "_verify_against_replay", poisoned)
        report = run_cluster_loadgen(
            backend="core", replicas=1, readers=1, duration=0.2,
            n=50, m=120, churn=8, inject_fault=False, strict=False,
        )
        assert "poisoned audit result" in report["consistency_problems"]
