"""Replica bootstrap, WAL tailing, compaction survival, family rules."""

import pytest

from repro.cluster import Replica
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import CheckpointMismatchError, ClusterError, ServeError
from repro.graph.generators import erdos_renyi
from repro.serve import ServeConfig, SPCService
from repro.workloads import random_insertions


def _service(tmp_path, backend="core", n=40, m=90, seed=3, **overrides):
    graph = erdos_renyi(n, m, seed=seed)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    config = ServeConfig(
        durability_dir=str(tmp_path), publish_every=2, max_staleness=0.005,
        **overrides,
    )
    return SPCService(engine, config=config)


def _sample_pairs(engine, k=40):
    vertices = sorted(engine.graph.vertices())
    return [(vertices[i % len(vertices)], vertices[(3 * i + 1) % len(vertices)])
            for i in range(k)]


class TestBootstrapAndTail:
    def test_replica_follows_the_wal(self, tmp_path):
        service = _service(tmp_path)
        with Replica(str(tmp_path), name="r0") as replica:
            assert replica.applied_seq == 0
            insertions = random_insertions(service.engine.graph, 12, seed=1)
            service.submit_many(insertions)
            service.flush()
            assert replica.catch_up(service.applied_seq, timeout=10.0)
            pairs = _sample_pairs(service.engine)
            assert replica.query_many(pairs) == service.query_many(pairs)
            assert replica.snapshot().seq == service.applied_seq
            assert replica.check_invariants()
        service.close()

    def test_replica_started_after_writes_bootstraps_warm(self, tmp_path):
        service = _service(tmp_path)
        insertions = random_insertions(service.engine.graph, 10, seed=2)
        service.submit_many(insertions)
        service.flush()
        service.checkpoint()
        with Replica(str(tmp_path), name="late") as replica:
            # the checkpoint already covers every batch: nothing to replay
            assert replica.applied_seq == service.applied_seq
            pairs = _sample_pairs(service.engine)
            assert replica.query_many(pairs) == service.query_many(pairs)
        service.close()

    def test_kill_mid_stream_then_fresh_replica_converges(self, tmp_path):
        service = _service(tmp_path)
        replica = Replica(str(tmp_path), name="doomed")
        insertions = random_insertions(service.engine.graph, 16, seed=4)
        service.submit_many(insertions[:8])
        service.flush()
        replica.kill()
        assert not replica.healthy
        frozen = replica.applied_seq
        service.submit_many(insertions[8:])
        service.flush()
        assert service.applied_seq > frozen
        # the dead replica's last snapshot stays pinned and readable
        assert replica.snapshot().seq == frozen
        # crash-recovery: a fresh replica under the same directory replays
        # checkpoint + WAL tail and converges to the primary
        with Replica(str(tmp_path), name="reborn") as again:
            assert again.catch_up(service.applied_seq, timeout=10.0)
            pairs = _sample_pairs(service.engine)
            assert again.query_many(pairs) == service.query_many(pairs)
        service.close()

    def test_missing_checkpoint_fails_loudly(self, tmp_path):
        with pytest.raises(ServeError, match="no checkpoint"):
            Replica(str(tmp_path / "empty"))

    def test_persistent_gap_kills_the_applier_instead_of_spinning(
            self, tmp_path):
        import os
        import time

        from repro.serve import WAL_FILENAME

        # Corrupt a record *past* the checkpoint's applied_seq: every
        # re-bootstrap lands on the same gap, which must surface as an
        # unhealthy replica, not an infinite hot bootstrap loop.
        service = _service(tmp_path)
        insertions = random_insertions(service.engine.graph, 6, seed=9)
        service.submit_many(insertions)
        service.flush()
        service.close()
        wal_path = os.path.join(str(tmp_path), WAL_FILENAME)
        with open(wal_path) as f:
            lines = f.readlines()
        lines[0] = "bit rot, but terminated\n"
        with open(wal_path, "w") as f:
            f.writelines(lines)
        replica = Replica(str(tmp_path), name="stuck")
        deadline = time.monotonic() + 10.0
        while replica.healthy and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not replica.healthy
        assert "no progress" in str(replica.fatal)
        assert replica.bootstraps <= 1 + replica.MAX_STALLED_BOOTSTRAPS
        replica.kill()


class TestCompactionSurvival:
    def test_caught_up_replica_survives_truncation_without_rebootstrap(
            self, tmp_path):
        service = _service(tmp_path)
        with Replica(str(tmp_path), name="r0") as replica:
            insertions = random_insertions(service.engine.graph, 12, seed=5)
            service.submit_many(insertions[:6])
            service.flush()
            assert replica.catch_up(service.applied_seq, timeout=10.0)
            service.checkpoint(truncate_wal=True)
            # let the tailer observe the compacted log before it regrows:
            # if new records land beyond its stale offset first, it takes
            # the (safe, but costlier) re-bootstrap fallback instead of
            # the cheap marker skip this test pins down
            import time

            time.sleep(0.1)
            service.submit_many(insertions[6:])
            service.flush()
            assert replica.catch_up(service.applied_seq, timeout=10.0)
            pairs = _sample_pairs(service.engine)
            assert replica.query_many(pairs) == service.query_many(pairs)
            # it skipped the head marker and kept streaming — compaction
            # must not cost a caught-up follower a full state transfer
            assert replica.bootstraps == 1
        service.close()

    def test_lagging_replica_rebootstraps_after_truncation(self, tmp_path):
        import shutil

        # The replica follows a *mirror* of the primary's directory, so
        # the test controls exactly which log state it observes: it is
        # deterministically lagging when the compacted state lands.
        primary_dir = tmp_path / "primary"
        mirror_dir = tmp_path / "mirror"
        service = _service(primary_dir)
        insertions = random_insertions(service.engine.graph, 12, seed=5)
        service.submit_many(insertions[:6])
        service.flush()
        shutil.copytree(primary_dir, mirror_dir)
        with Replica(str(mirror_dir), name="r0") as replica:
            assert replica.catch_up(service.applied_seq, timeout=10.0)
            assert replica.bootstraps == 1
            frozen = replica.applied_seq
            service.submit_many(insertions[6:])
            service.flush()
            service.checkpoint(truncate_wal=True)
            # publish the compacted state to the mirror: checkpoint
            # first, then the truncated log — the order the primary's
            # own checkpoint-before-truncate protocol guarantees
            from repro.serve import SNAPSHOT_FILENAME, WAL_FILENAME

            shutil.copy(primary_dir / SNAPSHOT_FILENAME,
                        mirror_dir / SNAPSHOT_FILENAME)
            shutil.copy(primary_dir / WAL_FILENAME,
                        mirror_dir / WAL_FILENAME)
            assert replica.catch_up(service.applied_seq, timeout=10.0)
            assert replica.applied_seq > frozen
            assert replica.bootstraps == 2  # the gap forced a re-bootstrap
            pairs = _sample_pairs(service.engine)
            assert replica.query_many(pairs) == service.query_many(pairs)
        service.close()

    def test_replica_survives_auto_compaction(self, tmp_path):
        service = _service(
            tmp_path, auto_checkpoint_every_k_batches=2
        )
        with Replica(str(tmp_path), name="r0") as replica:
            insertions = random_insertions(service.engine.graph, 18, seed=6)
            for update in insertions:  # one batch each -> many compactions
                service.submit(update)
                service.flush()
            assert service.stats()["wal_compactions"] >= 2
            assert replica.catch_up(service.applied_seq, timeout=10.0)
            pairs = _sample_pairs(service.engine)
            assert replica.query_many(pairs) == service.query_many(pairs)
            assert replica.healthy
        service.close()


class TestBackendFamilies:
    def test_cold_bootstrap_into_sibling_family(self, tmp_path):
        # A core primary can feed an sd replica: same graph family, the
        # replica rebuilds its own index from the checkpointed graph.
        service = _service(tmp_path, backend="core")
        with Replica(str(tmp_path), name="sd", backend="sd") as replica:
            assert replica.backend_name == "sd"
            insertions = random_insertions(service.engine.graph, 8, seed=7)
            service.submit_many(insertions)
            service.flush()
            assert replica.catch_up(service.applied_seq, timeout=10.0)
            for s, t in _sample_pairs(service.engine, k=20):
                sd, _ = service.query(s, t)
                assert replica.query(s, t) == (sd, None)
        service.close()

    def test_cross_graph_family_is_refused(self, tmp_path):
        service = _service(tmp_path, backend="core")
        with pytest.raises(CheckpointMismatchError, match="graph family"):
            Replica(str(tmp_path), backend="weighted")
        service.close()

    def test_catch_up_on_dead_replica_raises(self, tmp_path):
        service = _service(tmp_path)
        replica = Replica(str(tmp_path), name="r0")
        replica.kill()
        with pytest.raises(ClusterError, match="died"):
            replica._fatal = RuntimeError("boom")  # simulate applier death
            replica.catch_up(replica.applied_seq + 1, timeout=0.2)
        service.close()

    def test_catch_up_timeout_returns_false(self, tmp_path):
        service = _service(tmp_path)
        with Replica(str(tmp_path), name="r0") as replica:
            assert replica.catch_up(10**9, timeout=0.05) is False
        service.close()
