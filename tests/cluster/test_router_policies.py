"""Router policy properties: staleness bounds, floors, rotation, load.

The property tests drive :class:`ClusterRouter` over fake fleet members
with arbitrary applied/published sequence numbers — hypothesis explores
lagging replicas, dead replicas, and primaries whose published snapshot
trails their applied seq — and pin the two routing guarantees:

* **bounded staleness** — an acquired snapshot never has
  ``seq < primary_applied_seq - delta`` (the Δ contract of the policy);
* **min_seq floors** — an acquired snapshot never has ``seq < min_seq``
  (the hook read-your-writes sessions stand on).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import POLICIES, ClusterRouter
from repro.exceptions import ClusterError
from repro.serve.snapshot import SnapshotView


class _FakeIndex:
    def query(self, s, t):
        return (1, 1)


def _snap(seq):
    return SnapshotView(_FakeIndex(), "fake", seq, seq, 0.0)


class FakeTarget:
    """Stands in for a Replica (or the primary service): a pinned
    snapshot at ``snap_seq``, an applied seq, and a health flag."""

    def __init__(self, name, applied_seq, snap_seq=None, healthy=True):
        self.name = name
        self.applied_seq = applied_seq
        self.healthy = healthy
        self._snap = _snap(applied_seq if snap_seq is None else snap_seq)

    def snapshot(self):
        return self._snap


def _router(primary, replicas, policy, delta=0, wait_timeout=0.02):
    return ClusterRouter(
        primary, replicas, policy=policy, staleness_delta=delta,
        wait_timeout=wait_timeout,
    )


fleet_states = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=60),   # replica snapshot seq
        st.booleans(),                            # healthy?
    ),
    min_size=1,
    max_size=5,
)


class TestBoundedStalenessProperty:
    @settings(max_examples=120, deadline=None)
    @given(
        primary_seq=st.integers(min_value=0, max_value=60),
        publish_lag=st.integers(min_value=0, max_value=10),
        delta=st.integers(min_value=0, max_value=20),
        fleet=fleet_states,
    )
    def test_never_serves_beyond_delta(self, primary_seq, publish_lag,
                                       delta, fleet):
        primary = FakeTarget(
            "primary", primary_seq,
            snap_seq=max(0, primary_seq - publish_lag),
        )
        replicas = [
            FakeTarget(f"r{i}", seq, healthy=ok)
            for i, (seq, ok) in enumerate(fleet)
        ]
        router = _router(primary, replicas, "bounded_staleness", delta=delta)
        try:
            with router.acquire() as lease:
                assert lease.snapshot.seq >= primary_seq - delta
        except ClusterError:
            # Refusal is always allowed; serving stale never is.  Refusal
            # must also be *honest*: it may only happen when no healthy
            # target (primary included) was actually fresh enough.
            eligible = [
                r for r in replicas
                if r.healthy and r.snapshot().seq >= primary_seq - delta
            ]
            assert not eligible
            assert primary.snapshot().seq < primary_seq - delta

    @settings(max_examples=80, deadline=None)
    @given(
        primary_seq=st.integers(min_value=0, max_value=60),
        delta=st.integers(min_value=0, max_value=20),
        min_seq=st.integers(min_value=0, max_value=80),
        fleet=fleet_states,
    )
    def test_min_seq_floor_always_respected(self, primary_seq, delta,
                                            min_seq, fleet):
        # The read-your-writes floor: whatever the fleet looks like, an
        # acquired snapshot is never older than the caller's watermark.
        primary = FakeTarget("primary", primary_seq)
        replicas = [
            FakeTarget(f"r{i}", seq, healthy=ok)
            for i, (seq, ok) in enumerate(fleet)
        ]
        router = _router(primary, replicas, "bounded_staleness", delta=delta)
        try:
            with router.acquire(min_seq=min_seq) as lease:
                assert lease.snapshot.seq >= min_seq
                assert lease.snapshot.seq >= primary_seq - delta
        except ClusterError:
            pass  # refusal is fine; a stale answer is not

    @settings(max_examples=60, deadline=None)
    @given(
        policy=st.sampled_from(POLICIES),
        min_seq=st.integers(min_value=0, max_value=80),
        fleet=fleet_states,
    )
    def test_every_policy_honours_min_seq(self, policy, min_seq, fleet):
        primary = FakeTarget("primary", 40)
        replicas = [
            FakeTarget(f"r{i}", seq, healthy=ok)
            for i, (seq, ok) in enumerate(fleet)
        ]
        router = _router(primary, replicas, policy, delta=100)
        try:
            with router.acquire(min_seq=min_seq) as lease:
                assert lease.snapshot.seq >= min_seq
        except ClusterError:
            pass


class TestSelection:
    def test_round_robin_rotates_over_healthy_replicas(self):
        primary = FakeTarget("primary", 5)
        replicas = [FakeTarget(f"r{i}", 5) for i in range(3)]
        router = _router(primary, replicas, "round_robin")
        seen = [router.acquire().name for _ in range(9)]
        assert set(seen) == {"r0", "r1", "r2"}
        assert seen[:3] * 3 == seen  # stable rotation

    def test_dead_replicas_are_skipped(self):
        primary = FakeTarget("primary", 5)
        replicas = [
            FakeTarget("r0", 5, healthy=False),
            FakeTarget("r1", 5),
        ]
        router = _router(primary, replicas, "round_robin")
        assert {router.acquire().name for _ in range(6)} == {"r1"}

    def test_fallback_to_primary_when_no_replica_qualifies(self):
        primary = FakeTarget("primary", 5)
        replicas = [FakeTarget("r0", 5, healthy=False)]
        router = _router(primary, replicas, "round_robin")
        assert router.acquire().name == "primary"
        assert router.stats()["fallbacks"] == 1

    def test_least_loaded_prefers_idle_replica(self):
        primary = FakeTarget("primary", 5)
        replicas = [FakeTarget("r0", 5), FakeTarget("r1", 5)]
        router = _router(primary, replicas, "least_loaded")
        held = router.acquire()  # pins one replica with an open lease
        other = {"r0": "r1", "r1": "r0"}[held.name]
        for _ in range(4):
            with router.acquire() as lease:
                assert lease.name == other
        held.release()

    def test_release_is_idempotent(self):
        primary = FakeTarget("primary", 5)
        router = _router(primary, [FakeTarget("r0", 5)], "least_loaded")
        lease = router.acquire()
        lease.release()
        lease.release()
        with router.acquire() as again:
            assert again.name == "r0"

    def test_exhausted_wait_raises_cluster_error(self):
        primary = FakeTarget("primary", 5, snap_seq=0)
        replicas = [FakeTarget("r0", 0)]
        router = _router(
            primary, replicas, "bounded_staleness", delta=1, wait_timeout=0.02
        )
        with pytest.raises(ClusterError, match="lagging"):
            router.acquire()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ClusterError, match="unknown routing policy"):
            _router(FakeTarget("primary", 0), [], "random")

    def test_negative_delta_rejected(self):
        with pytest.raises(ClusterError, match="staleness_delta"):
            ClusterRouter(FakeTarget("primary", 0), [], staleness_delta=-1)

    def test_set_replica_swaps_handle(self):
        primary = FakeTarget("primary", 5)
        dead = FakeTarget("r0", 5, healthy=False)
        router = _router(primary, [dead], "round_robin")
        assert router.acquire().name == "primary"
        router.set_replica("r0", FakeTarget("r0", 5))
        assert router.acquire().name == "r0"
        with pytest.raises(ClusterError, match="knows no replica"):
            router.set_replica("r9", FakeTarget("r9", 5))
