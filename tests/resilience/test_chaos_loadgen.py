"""End-to-end smoke of the chaos harness: full schedule, tiny fleet.

Each variant runs the complete disk-fault schedule (kill, journal
bit-flip, checkpoint corruption, torn write, ENOSPC, crash loop)
against a small fleet under live readers and churn, in strict mode —
so any undetected phase, unhealed member, untyped corruption, or shadow
divergence fails the run itself before the assertions even look.
"""

from repro.resilience.loadgen import run_chaos_loadgen

SMALL = dict(
    n=40, m=90, churn=8, readers=1, batch_size=2,
    duration=30.0, heal_timeout=12.0, seed=0, strict=True,
)


def _check(report):
    phases = report["phases"]
    assert phases, "the schedule ran no phases"
    assert report["phases_detected"] == len(phases)
    assert report["phases_healed"] == len(phases)
    assert report["chaos_problems"] == []
    if report["fleet"] == "cluster":
        # The crash-loop finale *deliberately* drives one member through
        # the restart budget; its contained "failed" verdict is the pass.
        assert report["failed_members"] == [
            phases[-1]["injected"]["member"]
        ]
    else:
        assert report["failed_members"] == []
    assert report["auditor"]["audited"] > 0
    assert report["auditor"]["divergences"]["total"] == 0
    assert report["reads"] > 0
    assert report["mttr_s"]["max"] is not None
    for phase in phases:
        assert phase["mttr_s"] is not None and phase["mttr_s"] >= 0


class TestChaosSchedule:
    def test_cluster_fleet_survives_the_schedule(self, tmp_path):
        report = run_chaos_loadgen(
            backend="core", fleet="cluster", replicas=2,
            state_dir=str(tmp_path), **SMALL,
        )
        _check(report)

    def test_shard_fleet_survives_the_schedule(self, tmp_path):
        report = run_chaos_loadgen(
            backend="core", fleet="shard", shards=3,
            state_dir=str(tmp_path), **SMALL,
        )
        _check(report)

    def test_shard_fleet_degraded_mode_serves_and_stays_clean(self, tmp_path):
        report = run_chaos_loadgen(
            backend="core", fleet="shard", shards=3,
            degraded="stale", degraded_max_lag=1024, ring_size=1024,
            state_dir=str(tmp_path), **SMALL,
        )
        _check(report)
        # Opt-in degradation actually engaged — and the auditor, which
        # rewinds to each read's true cut, still found zero divergences.
        assert report["degraded_mode"] == "stale"
        assert report["degraded_reads"] > 0
