"""Supervisor: detection, auto-restart, crash-loop budget, corruption repair."""

import os

import pytest

from repro.cluster import SPCCluster
from repro.resilience import Supervisor, SupervisorConfig
from repro.resilience.chaos import flip_bit_in_record
from repro.exceptions import ReproError
from repro.shard import ShardedCluster
from repro.workloads import random_insertions

FAST = dict(
    poll_interval=0.01,
    backoff_initial=0.01,
    backoff_max=0.1,
    restart_budget=8,
    budget_window=10.0,
)


def _grow(fleet, batches=6, seed=7):
    insertions = random_insertions(fleet.primary.engine.graph, batches, seed=seed)
    for update in insertions:
        fleet.submit(update)
    return fleet.sync()


class TestAutoRestart:
    def test_killed_replica_is_restarted_and_catches_up(self, engine, tmp_path, await_true):
        with SPCCluster(engine, str(tmp_path), replicas=2,
                        stall_budget=2) as cluster:
            seq = _grow(cluster)
            with Supervisor(cluster, **FAST) as sup:
                victim = sorted(cluster.replicas)[0]
                cluster.kill_replica(victim)
                assert await_true(
                    lambda: cluster.replicas[victim].healthy
                    and cluster.replicas[victim].applied_seq >= seq
                )
                assert await_true(
                    lambda: sup.monitor.state(victim) == "up"
                )
                assert sup.stats()["restarts"] >= 1
                # The incident closed with a measured recovery time.
                assert await_true(lambda: len(sup.incidents) == 1)
                incident = sup.incidents[0]
                assert incident.member == victim
                assert not incident.failed
                assert incident.mttr_s is not None and incident.mttr_s > 0

    def test_killed_shard_is_restarted(self, engine, tmp_path, await_true):
        with ShardedCluster(engine, str(tmp_path), shards=3,
                            stall_budget=2) as fleet:
            _grow(fleet)
            with Supervisor(fleet, **FAST) as sup:
                fleet.kill_shard(0)
                victim = fleet.shards[0].name
                assert await_true(lambda: fleet.shards[0].healthy)
                assert await_true(lambda: sup.monitor.state(victim) == "up")
                assert sup.kind == "shard"

    def test_transition_log_tells_the_story(self, engine, tmp_path, await_true):
        with SPCCluster(engine, str(tmp_path), replicas=1) as cluster:
            _grow(cluster)
            with Supervisor(cluster, **FAST) as sup:
                victim = sorted(cluster.replicas)[0]
                cluster.kill_replica(victim)
                # Wait for detection first — the member starts "up", so
                # polling for "up" alone would pass before the kill is
                # even observed.
                assert await_true(
                    lambda: sup.monitor.state(victim) != "up"
                )
                assert await_true(
                    lambda: sup.monitor.state(victim) == "up"
                )
                states = [e.state for e in sup.monitor.events_for(victim)]
                # down -> restarting -> up, possibly with repeated
                # down/restarting rounds in between; never failed.
                assert states[0] == "down"
                assert states[-1] == "up"
                assert "restarting" in states
                assert "failed" not in states


class TestCrashLoopBudget:
    def test_persistent_crasher_is_marked_failed(self, engine, tmp_path, await_true):
        with SPCCluster(engine, str(tmp_path), replicas=2,
                        stall_budget=2) as cluster:
            _grow(cluster)
            victim = sorted(cluster.replicas)[0]
            survivor = sorted(cluster.replicas)[1]
            with Supervisor(cluster, **dict(FAST, restart_budget=3)) as sup:
                # Re-kill the victim every time the supervisor revives it.
                def failed():
                    if sup.monitor.state(victim) == "failed":
                        return True
                    replica = cluster.replicas.get(victim)
                    if replica is not None and replica.healthy:
                        cluster.kill_replica(victim)
                    return False

                assert await_true(failed, timeout=15.0)
                # The incident is recorded as unrecovered, with no MTTR
                # (a failed member must not average into recovery times).
                incidents = [i for i in sup.incidents if i.member == victim]
                assert incidents and incidents[-1].failed
                assert incidents[-1].mttr_s is None
                # The survivor is untouched and the fleet still serves.
                assert cluster.replicas[survivor].healthy
                assert cluster.query(0, 1) is not None

    def test_failed_is_terminal_for_the_supervisor(self, engine, tmp_path, await_true):
        with SPCCluster(engine, str(tmp_path), replicas=1,
                        stall_budget=2) as cluster:
            _grow(cluster)
            victim = sorted(cluster.replicas)[0]
            with Supervisor(cluster, **dict(FAST, restart_budget=2)) as sup:
                def failed():
                    if sup.monitor.state(victim) == "failed":
                        return True
                    replica = cluster.replicas.get(victim)
                    if replica is not None and replica.healthy:
                        cluster.kill_replica(victim)
                    return False

                assert await_true(failed, timeout=15.0)
                restarts = sup.stats()["restarts"]
                # No further restart attempts accrue for a failed member.
                assert not await_true(
                    lambda: sup.stats()["restarts"] > restarts, timeout=0.3
                )


class TestCorruptionRepair:
    def test_corrupt_stream_is_repaired_before_restart(self, engine, tmp_path, await_true):
        with SPCCluster(engine, str(tmp_path), replicas=2,
                        stall_budget=2) as cluster:
            _grow(cluster)
            wal = os.path.join(str(tmp_path), "wal.jsonl")
            flip_bit_in_record(wal, seed=17)
            with Supervisor(cluster, **FAST) as sup:
                victim = sorted(cluster.replicas)[0]
                cluster.kill_replica(victim)
                # The replacement dies on the poisoned stream, the
                # supervisor classifies the typed corruption and repairs
                # (fresh checkpoint + truncated WAL), and the next
                # restart sticks.
                assert await_true(
                    lambda: sup.monitor.state(victim) != "up"
                )
                assert await_true(
                    lambda: sup.stats()["repairs"] >= 1, timeout=15.0
                )
                assert await_true(
                    lambda: sup.monitor.state(victim) == "up", timeout=15.0
                )
                # The repair rewrote the stream: replay is clean again.
                from repro.serve.wal import read_wal
                list(read_wal(wal))


class TestConfigAndStats:
    def test_unsupervisable_fleet_rejected(self):
        with pytest.raises(ReproError, match="neither"):
            Supervisor(object())

    def test_config_validation(self):
        with pytest.raises(ReproError):
            SupervisorConfig(poll_interval=0)
        with pytest.raises(ReproError):
            SupervisorConfig(backoff_initial=2.0, backoff_max=1.0)
        with pytest.raises(ReproError):
            SupervisorConfig(restart_budget=0)
        with pytest.raises(ReproError):
            SupervisorConfig(jitter=-1)

    def test_stats_shape_and_close_idempotent(self, engine, tmp_path, await_true):
        with SPCCluster(engine, str(tmp_path), replicas=1) as cluster:
            sup = Supervisor(cluster, **FAST)
            assert await_true(lambda: sup.stats()["ticks"] > 0)
            stats = sup.stats()
            for key in ("ticks", "restarts", "repairs", "incidents",
                        "mttr_max_s"):
                assert key in stats
            sup.close()
            sup.close()   # idempotent
