"""Mid-record corruption in the replication streams, end to end.

Satellite of the chaos harness: an interior bit flip in the WAL (replica
feed) or the label journal (shard feed) must surface as the typed
:class:`~repro.exceptions.WalCorruptionError` — counted in
``stream_corruptions``, killing the follower rather than letting it
apply damaged records — and stay poisoned across re-bootstraps until the
stream itself is rewritten (checkpoint + truncation), after which a
restart heals.  No supervisor here: this pins the member-level contract
the supervisor builds on.
"""

import os

import pytest

from repro.cluster import SPCCluster
from repro.exceptions import ClusterError, ShardError
from repro.resilience.chaos import flip_bit_in_record
from repro.shard import ShardedCluster
from repro.workloads import random_insertions


def _grow(fleet, batches=6, seed=7):
    insertions = random_insertions(
        fleet.primary.engine.graph, batches, seed=seed
    )
    for update in insertions:
        fleet.submit(update)
    return fleet.sync()


class TestReplicaWalCorruption:
    def test_flip_kills_the_rebootstrapping_replica_typed(
            self, engine, tmp_path, await_true):
        cluster = SPCCluster(engine, str(tmp_path), replicas=1,
                             stall_budget=2)
        try:
            _grow(cluster)
            name = sorted(cluster.replicas)[0]
            flip_bit_in_record(
                os.path.join(str(tmp_path), "wal.jsonl"), seed=17
            )
            cluster.kill_replica(name)
            cluster.restart_replica(name)
            # The replacement replays the poisoned WAL from the seq-0
            # checkpoint: every record is re-verified, the flip fails
            # its stamp (or its parse) as a *typed* corruption — counted,
            # never applied — and the stall budget converts the
            # unfillable gap into a fatal death.
            replica = cluster.replicas[name]
            assert await_true(lambda: not replica.healthy)
            assert replica.stream_corruptions >= 1
            assert isinstance(replica.fatal, ClusterError)
            assert "corrupt" in str(replica.fatal)
        finally:
            # close() reporting the poisoned follower's death is the
            # expected epitaph.
            with pytest.raises(ClusterError):
                cluster.close()

    def test_repair_then_restart_heals(self, engine, tmp_path, await_true):
        with SPCCluster(engine, str(tmp_path), replicas=1,
                        stall_budget=2) as cluster:
            seq = _grow(cluster)
            name = sorted(cluster.replicas)[0]
            flip_bit_in_record(
                os.path.join(str(tmp_path), "wal.jsonl"), seed=17
            )
            cluster.kill_replica(name)
            cluster.restart_replica(name)
            assert await_true(lambda: not cluster.replicas[name].healthy)
            # The supervisor's repair, by hand: a fresh checkpoint
            # subsumes the poisoned records and truncates the WAL.
            cluster.checkpoint(truncate_wal=True)
            cluster.restart_replica(name)
            replica = cluster.replicas[name]
            assert await_true(
                lambda: replica.healthy and replica.applied_seq >= seq
            )
            assert cluster.query(0, 1) is not None


class TestShardJournalCorruption:
    def test_flip_kills_the_rebootstrapping_shard_typed(
            self, engine, tmp_path, await_true):
        fleet = ShardedCluster(engine, str(tmp_path), shards=2,
                               stall_budget=2)
        try:
            _grow(fleet)
            flip_bit_in_record(
                os.path.join(str(tmp_path), "labels.jsonl"), seed=17
            )
            fleet.kill_shard(0)
            fleet.restart_shard(0)
            shard = fleet.shards[0]
            assert await_true(lambda: not shard.healthy)
            assert shard.stream_corruptions >= 1
            assert isinstance(shard.fatal, ShardError)
            assert "corrupt" in str(shard.fatal)
        finally:
            with pytest.raises(ShardError):
                fleet.close()

    def test_repair_then_restart_heals(self, engine, tmp_path, await_true):
        with ShardedCluster(engine, str(tmp_path), shards=2,
                            stall_budget=2) as fleet:
            seq = _grow(fleet)
            flip_bit_in_record(
                os.path.join(str(tmp_path), "labels.jsonl"), seed=17
            )
            fleet.kill_shard(0)
            fleet.restart_shard(0)
            assert await_true(lambda: not fleet.shards[0].healthy)
            fleet.checkpoint(truncate_wal=True)
            fleet.restart_shard(0)
            shard = fleet.shards[0]
            assert await_true(
                lambda: shard.healthy and shard.applied_seq >= seq
            )
            assert fleet.query(0, 1) is not None
