"""Resilient routing: failover, refusal-by-default, opt-in degradation.

The correctness contract under faults: a read is either served from a
state at least as fresh as its floor, refused with a typed error, or —
only when the operator opted in — served bounded-stale and *tagged* as
such.  Silent staleness is never an option.
"""

import pytest

from repro.cluster import SPCCluster
from repro.exceptions import ClusterError, ShardError
from repro.shard import ShardedCluster
from repro.workloads import random_insertions


def _grow(fleet, batches=6, seed=7):
    insertions = random_insertions(
        fleet.primary.engine.graph, batches, seed=seed
    )
    for update in insertions:
        fleet.submit(update)
    return fleet.sync()


class TestClusterFailover:
    def test_reads_fail_over_to_the_primary_when_replicas_die(
            self, engine, tmp_path):
        with SPCCluster(engine, str(tmp_path), replicas=2,
                        wait_timeout=0.2) as cluster:
            _grow(cluster)
            for name in list(cluster.replicas):
                cluster.kill_replica(name)
            # No replica qualifies; the router's last resort is the
            # primary's own snapshot — fresh, never degraded.
            answer, _seq, target = cluster.query_tagged(0, 1)
            assert answer == cluster.primary.query(0, 1)
            assert target == "primary"
            assert not target.endswith("+degraded")

    def test_unreachable_floor_is_refused_not_served_stale(
            self, engine, tmp_path):
        with SPCCluster(engine, str(tmp_path), replicas=1,
                        wait_timeout=0.1, degraded="stale") as cluster:
            seq = _grow(cluster)
            # A read-your-writes floor nothing has applied yet: even in
            # degraded mode a floored read must refuse, not degrade —
            # read-your-writes never weakens.
            with pytest.raises(ClusterError):
                cluster.router.query(0, 1, min_seq=seq + 100)


class TestShardRefusalAndDegradation:
    def test_dead_shard_refuses_cross_shard_reads_by_default(
            self, engine, tmp_path):
        with ShardedCluster(engine, str(tmp_path), shards=3,
                            wait_timeout=0.1) as fleet:
            _grow(fleet)
            fleet.kill_shard(0)
            with pytest.raises(ShardError, match="down"):
                fleet.query(0, 1)
            assert fleet.router.stats()["refusals"] >= 1

    def test_breaker_converts_repeated_refusals_into_fast_ones(
            self, engine, tmp_path):
        with ShardedCluster(engine, str(tmp_path), shards=3,
                            wait_timeout=0.1, breaker_threshold=2,
                            breaker_cooldown=30.0) as fleet:
            _grow(fleet)
            fleet.kill_shard(0)
            for _ in range(3):
                with pytest.raises(ShardError):
                    fleet.query(0, 1)
            # The dead shard's breaker tripped; with the cooldown still
            # running, further reads refuse instantly (no wait budget
            # burned) and say so.
            with pytest.raises(ShardError, match="circuit open"):
                fleet.query(0, 1)
            stats = fleet.router.stats()
            assert stats["fast_refusals"] >= 1
            assert any(
                b["trips"] >= 1 for b in stats["breakers"].values()
            )

    def test_restart_resets_the_breaker_and_serves_again(
            self, engine, tmp_path, await_true):
        with ShardedCluster(engine, str(tmp_path), shards=3,
                            wait_timeout=0.5, breaker_threshold=2,
                            breaker_cooldown=30.0) as fleet:
            seq = _grow(fleet)
            fleet.kill_shard(0)
            for _ in range(3):
                with pytest.raises(ShardError):
                    fleet.query(0, 1)
            fleet.restart_shard(0)
            assert await_true(
                lambda: fleet.shards[0].healthy
                and fleet.shards[0].applied_seq >= seq
            )
            # No 30 s cooldown to sit out: the restart reset the breaker.
            assert fleet.query(0, 1) == fleet.primary.query(0, 1)

    def test_degraded_mode_serves_tagged_bounded_stale(
            self, engine, tmp_path):
        with ShardedCluster(engine, str(tmp_path), shards=3,
                            wait_timeout=0.1, degraded="stale",
                            degraded_max_lag=256, ring_size=256) as fleet:
            seq = _grow(fleet)
            fleet.sync()
            fleet.kill_shard(0)
            # The dead slice still holds its published ring views, so a
            # floorless read degrades to the newest common historical
            # cut — tagged, with the cut's true seq.
            answer, cut_seq, target = fleet.query_tagged(0, 1)
            assert target == "shard-router+degraded"
            assert cut_seq <= seq
            assert fleet.router.stats()["degraded_serves"] >= 1

    def test_degraded_mode_refuses_beyond_the_staleness_bound(
            self, engine, tmp_path, await_true):
        with ShardedCluster(engine, str(tmp_path), shards=3,
                            wait_timeout=0.1, degraded="stale",
                            degraded_max_lag=2, ring_size=64) as fleet:
            _grow(fleet, batches=4, seed=7)
            fleet.kill_shard(0)
            # Advance the survivors far past the bound: the writer
            # coalesces everything pending into one seq per flush, so it
            # takes several flush rounds for the dead slice's frozen
            # ring to fall outside degraded_max_lag — after which the
            # read must refuse; bounded staleness means the bound is real.
            for round_seed in range(9, 13):
                for update in random_insertions(
                        fleet.primary.engine.graph, 2, seed=round_seed):
                    fleet.submit(update)
                seq = fleet.flush(timeout=30.0).seq
            assert await_true(
                lambda: all(
                    s.applied_seq >= seq
                    for s in fleet.shards.values() if s.healthy
                )
            )
            with pytest.raises(ShardError):
                fleet.query(0, 1)