"""Checksummed storage: the CRC stamp rules the chaos harness relies on.

The basic stamp round-trip lives in ``tests/serve/test_wal.py``; this
module pins the *hardening* semantics this layer grew for the chaos
schedule: the legacy-prefix rule (unstamped records accepted only before
any stamped one), the stamp-continuity refusal (a stripped ``"crc"`` key
cannot demote a record back to legacy), and the verify order (a damaged
``"backend"`` value surfaces as corruption, not as a foreign-family log).
"""

import json

import pytest

from repro.exceptions import CheckpointMismatchError, WalCorruptionError
from repro.serve.wal import WalTailer, read_wal, record_crc


def _record(seq, updates, backend=None, stamp=True, **extra):
    payload = {"seq": seq, "updates": updates}
    if backend is not None:
        payload["backend"] = backend
    if stamp:
        payload["crc"] = record_crc(seq, updates, backend)
    payload.update(extra)
    return json.dumps(payload) + "\n"


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "wal.jsonl")


class TestStampRoundTrip:
    def test_stamped_records_read_back(self, wal_path):
        with open(wal_path, "w") as f:
            f.write(_record(1, [["ie", 0, 1, None]], backend="core"))
            f.write(_record(2, [["de", 0, 1, None]], backend="core"))
        assert [seq for seq, _ in read_wal(wal_path)] == [1, 2]

    def test_content_mismatch_raises_typed_error(self, wal_path):
        line = _record(1, [["ie", 0, 1, None]], backend="core")
        doctored = line.replace('"seq": 1', '"seq": 3')
        with open(wal_path, "w") as f:
            f.write(doctored)
        with pytest.raises(WalCorruptionError, match="checksum"):
            list(read_wal(wal_path))

    def test_all_legacy_records_accepted(self, wal_path):
        # A log written entirely before stamping existed still replays.
        with open(wal_path, "w") as f:
            f.write(_record(1, [["ie", 0, 1, None]], stamp=False))
            f.write(_record(2, [["ie", 1, 2, None]], stamp=False))
        assert [seq for seq, _ in read_wal(wal_path)] == [1, 2]


class TestStampContinuity:
    def test_legacy_prefix_then_stamped_tail_accepted(self, wal_path):
        # The upgrade case: an old log appended to by a stamping writer.
        with open(wal_path, "w") as f:
            f.write(_record(1, [["ie", 0, 1, None]], stamp=False))
            f.write(_record(2, [["ie", 1, 2, None]]))
        assert [seq for seq, _ in read_wal(wal_path)] == [1, 2]

    def test_unstamped_after_stamped_raises(self, wal_path):
        # A stripped "crc" key must not demote a record to legacy: once
        # one stamped record has been read, every later record must
        # carry a stamp.
        with open(wal_path, "w") as f:
            f.write(_record(1, [["ie", 0, 1, None]]))
            f.write(_record(2, [["ie", 1, 2, None]], stamp=False))
        with pytest.raises(WalCorruptionError, match="stripped"):
            list(read_wal(wal_path))

    def test_crc_key_rename_via_bit_flip_is_caught(self, wal_path):
        # The exact failure this rule exists for: a 0x01 bit flip landing
        # on the "c" of "crc" renames the key and would otherwise bypass
        # the checksum entirely.
        with open(wal_path, "w") as f:
            f.write(_record(1, [["ie", 5, 6, None]], backend="core"))
            bad = _record(2, [["ie", 0, 1, None]], backend="core")
            f.write(bad.replace('"crc"', '"brc"'))
        with pytest.raises(WalCorruptionError):
            list(read_wal(wal_path))

    def test_tailer_enforces_continuity_across_polls(self, wal_path):
        with open(wal_path, "w") as f:
            f.write(_record(1, [["ie", 0, 1, None]]))
        tailer = WalTailer(wal_path)
        records, gap = tailer.poll()
        assert [seq for seq, _ in records] == [1]
        assert not gap
        with open(wal_path, "a") as f:
            f.write(_record(2, [["ie", 1, 2, None]], stamp=False))
        records, gap = tailer.poll()
        assert gap
        assert tailer.corruptions == 1
        assert isinstance(tailer.last_corruption, WalCorruptionError)
        assert "stripped" in str(tailer.last_corruption)


class TestVerifyOrder:
    def test_damaged_backend_value_is_corruption_not_mismatch(self, wal_path):
        # The stamp was computed over backend="weighted"; flipping a byte
        # of the value afterwards must fail the CRC — not raise the
        # foreign-family CheckpointMismatchError, which would misclassify
        # in-place damage as an operator wiring error.
        line = _record(1, [["ie", 0, 1, None]], backend="weighted")
        with open(wal_path, "w") as f:
            f.write(line.replace('"weighted"', '"weightee"'))
        with pytest.raises(WalCorruptionError):
            list(read_wal(wal_path, expect_backend="weighted"))

    def test_genuine_foreign_family_still_raises_mismatch(self, wal_path):
        # A record that *verifies* under its own stamp but names another
        # family really is a wiring error.
        with open(wal_path, "w") as f:
            f.write(_record(1, [["ie", 0, 1, None]], backend="directed"))
        with pytest.raises(CheckpointMismatchError):
            list(read_wal(wal_path, expect_backend="core"))


class TestDecodeFreeScan:
    def test_tailer_scan_flags_interior_corruption(self, wal_path):
        # The chaos harness's independent scan: a tailer past any real
        # seq with no expected backend CRC-checks every line without
        # decoding one — the same pass works on WALs and label journals.
        with open(wal_path, "w") as f:
            f.write(_record(1, [["ie", 0, 1, None]], backend="core"))
            bad = _record(2, [["ie", 1, 2, None]], backend="core")
            f.write(bad.replace('"seq": 2', '"seq": 4'))
        tailer = WalTailer(wal_path, after_seq=1 << 62, expect_backend=None)
        _records, gap = tailer.poll()
        assert gap
        assert isinstance(tailer.last_corruption, WalCorruptionError)
