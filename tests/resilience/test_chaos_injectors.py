"""The disk-fault injectors: deterministic damage, typed detection.

Every injector must (a) report exactly what it damaged and (b) produce
damage the storage layer refuses with a *typed* error — never damage
that decodes into wrong answers.
"""

import os

import pytest

from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import ReproError, ServeError, WalCorruptionError
from repro.graph.generators import erdos_renyi
from repro.resilience import (
    DiskFullFault,
    corrupt_checkpoint,
    flip_bit_in_record,
    torn_write,
)
from repro.serve import SPCService, ServeConfig
from repro.serve.persist import load_checkpoint
from repro.serve.wal import read_wal
from repro.workloads import random_insertions


def _service(tmp_path, n=40, m=90, seed=3, **overrides):
    graph = erdos_renyi(n, m, seed=seed)
    engine = SPCEngine(graph, config=EngineConfig(backend="core"))
    return SPCService(
        engine, durability_dir=str(tmp_path), overwrite=True, **overrides
    )


def _grow_wal(service, batches=6, seed=7):
    insertions = random_insertions(service.engine.graph, batches, seed=seed)
    for update in insertions:
        service.submit(update)
    service.flush(timeout=30.0)
    return insertions


class TestFlipBitInRecord:
    def test_flip_reports_its_ledger_and_changes_one_byte(self, tmp_path):
        with _service(tmp_path) as service:
            _grow_wal(service)
            wal = os.path.join(str(tmp_path), "wal.jsonl")
            before = open(wal, "rb").read()
            info = flip_bit_in_record(wal, seed=11)
            after = open(wal, "rb").read()
        assert info["path"] == wal
        assert info["after"] == info["before"] ^ 0x01
        assert len(before) == len(after)
        diffs = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
        assert diffs == [info["offset"]]

    def test_flipped_record_refuses_replay_with_typed_error(self, tmp_path):
        with _service(tmp_path) as service:
            _grow_wal(service)
        wal = os.path.join(str(tmp_path), "wal.jsonl")
        flip_bit_in_record(wal, seed=11)
        with pytest.raises(WalCorruptionError):
            list(read_wal(wal))

    def test_every_interior_record_is_protected(self, tmp_path):
        # Whatever record the flip lands in, replay must refuse: the
        # stamp plus the continuity rule leave no unprotected byte in
        # any record that follows the first.
        with _service(tmp_path) as service:
            _grow_wal(service)
        wal = os.path.join(str(tmp_path), "wal.jsonl")
        n_records = sum(1 for _ in open(wal))
        pristine = open(wal, "rb").read()
        for record in range(1, n_records):
            for seed in range(4):
                with open(wal, "wb") as f:
                    f.write(pristine)
                flip_bit_in_record(wal, record=record, seed=seed)
                with pytest.raises(WalCorruptionError):
                    list(read_wal(wal))

    def test_refuses_an_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ReproError, match="no complete record"):
            flip_bit_in_record(str(path))

    def test_refuses_an_out_of_range_record(self, tmp_path):
        path = tmp_path / "one.jsonl"
        path.write_text('{"seq": 1, "updates": []}\n')
        with pytest.raises(ReproError, match="only 1 complete"):
            flip_bit_in_record(str(path), record=5)


class TestTornWrite:
    def test_appends_fragment_without_newline(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"seq": 1, "updates": []}\n')
        size = path.stat().st_size
        info = torn_write(str(path))
        assert info["offset"] == size
        data = path.read_bytes()
        assert not data.endswith(b"\n")
        assert len(data) == size + info["bytes"]

    def test_rejects_a_complete_record_as_fragment(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text("")
        with pytest.raises(ReproError, match="newline"):
            torn_write(str(path), fragment=b'{"seq": 1}\n')

    def test_bare_torn_tail_is_benign_to_replay(self, tmp_path):
        # Against a stopped writer the fragment is an unacknowledged
        # tail — replay must ignore it, not refuse the log.
        with _service(tmp_path) as service:
            _grow_wal(service)
        wal = os.path.join(str(tmp_path), "wal.jsonl")
        n_records = len(list(read_wal(wal)))
        torn_write(wal)
        assert len(list(read_wal(wal))) == n_records

    def test_weld_with_a_live_writer_is_typed_corruption(self, tmp_path):
        # The dangerous variant: a still-running writer's next O_APPEND
        # record glues onto the fragment, and the welded line must fail
        # as typed corruption — the torn-write phase of the chaos
        # schedule end to end, minus the supervisor.
        with _service(tmp_path) as service:
            _grow_wal(service, batches=4, seed=7)
            wal = os.path.join(str(tmp_path), "wal.jsonl")
            torn_write(wal)
            _grow_wal(service, batches=4, seed=8)
            with pytest.raises(WalCorruptionError):
                list(read_wal(wal))


class TestCorruptCheckpoint:
    def test_corrupted_checkpoint_refuses_restore(self, tmp_path):
        with _service(tmp_path) as service:
            _grow_wal(service)
            service.checkpoint()
        snap = os.path.join(str(tmp_path), "snapshot.json")
        assert load_checkpoint(snap)   # pristine restores
        info = corrupt_checkpoint(snap, seed=5)
        assert info["after"] == info["before"] ^ 0x01
        # Both detection paths are acceptable — a failed crc stamp or a
        # broken parse — but silent acceptance is not.
        with pytest.raises((WalCorruptionError, ServeError)):
            load_checkpoint(snap)

    def test_refuses_a_tiny_file(self, tmp_path):
        path = tmp_path / "snapshot.json"
        path.write_text("{}")
        with pytest.raises(ReproError, match="too small"):
            corrupt_checkpoint(str(path))


class TestDiskFullFault:
    def test_checkpoint_fault_fails_typed_and_writer_survives(self, tmp_path):
        with _service(tmp_path) as service:
            _grow_wal(service)
            fault = DiskFullFault(ops=("checkpoint",))
            service.set_disk_fault(fault)
            fault.arm()
            with pytest.raises(ServeError, match="[Nn]o space"):
                service.checkpoint()
            assert fault.raised == 1
            # The writer survives a checkpoint-time ENOSPC: appends have
            # room, so updates keep applying and a later checkpoint (the
            # disk was cleaned up) succeeds.
            fault.disarm()
            _grow_wal(service, batches=2, seed=9)
            service.checkpoint()
            service.set_disk_fault(None)

    def test_append_fault_is_fail_stop(self, tmp_path):
        # An append fault raises before any bytes land: the log must
        # never hold a half-acknowledged record, so the writer dies
        # rather than limping with a silently dropped append.
        service = _service(tmp_path)
        try:
            _grow_wal(service)
            wal = os.path.join(str(tmp_path), "wal.jsonl")
            records_before = len(list(read_wal(wal)))
            fault = DiskFullFault(ops=("append",))
            service.set_disk_fault(fault)
            fault.arm()
            with pytest.raises(ServeError):
                _grow_wal(service, batches=2, seed=10)
            assert fault.raised >= 1
            assert len(list(read_wal(wal))) == records_before
        finally:
            # The writer died on the injected fault; close() reporting
            # that death is the expected epitaph, not a test failure.
            with pytest.raises(ServeError):
                service.close()

    def test_unarmed_fault_is_inert(self, tmp_path):
        fault = DiskFullFault()
        fault("append", "anywhere")   # disarmed: no raise
        fault.arm()
        with pytest.raises(OSError, match="injected disk-full"):
            fault("append", "anywhere")
        fault.disarm()
        fault("checkpoint", "anywhere")
        assert fault.raised == 1
