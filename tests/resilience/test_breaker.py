"""CircuitBreaker: closed / open / half-open and the probe protocol."""

import pytest

from repro.exceptions import ReproError
from repro.resilience import CircuitBreaker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=clock)


class TestClosed:
    def test_closed_always_allows(self, breaker):
        for _ in range(10):
            assert breaker.allow()
        assert breaker.state == "closed"

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"   # never reached 3 consecutive

    def test_threshold_consecutive_failures_trip_open(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()


class TestOpenAndHalfOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()

    def test_open_rejects_until_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(0.99)
        assert not breaker.allow()
        clock.advance(0.02)
        assert breaker.allow()   # this caller carries the probe

    def test_only_one_probe_admitted(self, breaker, clock):
        self._trip(breaker)
        clock.advance(1.5)
        assert breaker.allow()
        assert not breaker.allow()   # probe already in flight
        assert breaker.state == "half_open"

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(1.01)
        assert breaker.allow()

    def test_reset_force_closes_without_cooldown(self, breaker):
        self._trip(breaker)
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()


class TestValidationAndStats:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ReproError):
            CircuitBreaker(failure_threshold=0)

    def test_cooldown_must_be_nonnegative(self):
        with pytest.raises(ReproError):
            CircuitBreaker(cooldown=-0.1)

    def test_stats_shape(self, breaker):
        breaker.record_failure()
        stats = breaker.stats()
        assert stats == {
            "state": "closed", "consecutive_failures": 1, "trips": 0,
        }
