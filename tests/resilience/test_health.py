"""HealthMonitor: the fleet-wide state machine and its event log."""

import pytest

from repro.exceptions import ReproError
from repro.resilience import (
    MEMBER_STATES,
    SERVING_STATES,
    HealthEvent,
    HealthMonitor,
)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def monitor(clock):
    return HealthMonitor(lag_threshold=8, clock=clock)


class TestDerivedStates:
    def test_registered_member_starts_up(self, monitor):
        monitor.register("r0")
        assert monitor.state("r0") == "up"
        assert monitor.serving("r0")

    def test_register_is_idempotent(self, monitor):
        monitor.register("r0")
        monitor.observe("r0", False)
        monitor.register("r0")   # must not reset the known state
        assert monitor.state("r0") == "down"

    def test_lag_crossing_threshold_marks_lagging(self, monitor):
        monitor.register("r0")
        assert monitor.observe("r0", True, lag=7) == "up"
        assert monitor.observe("r0", True, lag=8) == "lagging"
        assert not monitor.serving("r0") or "lagging" in SERVING_STATES
        assert monitor.serving("r0")   # lagging members still serve
        assert monitor.observe("r0", True, lag=0) == "up"

    def test_unhealthy_observation_marks_down(self, monitor):
        monitor.register("r0")
        assert monitor.observe("r0", False, detail="killed") == "down"
        assert not monitor.serving("r0")

    def test_observe_autoregisters_unknown_members(self, monitor):
        assert monitor.observe("surprise", True) == "up"
        assert "surprise" in monitor.states()

    def test_lag_is_queryable(self, monitor):
        monitor.observe("r0", True, lag=5)
        assert monitor.lag("r0") == 5
        assert monitor.lag("unknown") == 0


class TestImposedStates:
    def test_failed_is_sticky_under_observations(self, monitor):
        monitor.register("r0")
        monitor.set_state("r0", "failed", detail="budget exhausted")
        assert monitor.observe("r0", True) == "failed"
        assert monitor.observe("r0", False) == "failed"
        assert not monitor.serving("r0")

    def test_restarting_is_sticky_under_observations(self, monitor):
        monitor.register("r0")
        monitor.set_state("r0", "restarting")
        # A freshly swapped-in member must not flap to up before the
        # supervisor finishes its bookkeeping.
        assert monitor.observe("r0", True) == "restarting"

    def test_set_state_revives_a_failed_member(self, monitor):
        monitor.set_state("r0", "failed")
        monitor.set_state("r0", "up", detail="operator revival")
        assert monitor.observe("r0", True) == "up"

    def test_unknown_state_rejected(self, monitor):
        with pytest.raises(ReproError):
            monitor.set_state("r0", "zombie")
        with pytest.raises(ReproError):
            monitor.register("r0", state="zombie")

    def test_all_vocabulary_states_are_settable(self, monitor):
        for state in MEMBER_STATES:
            monitor.set_state("r0", state)
            assert monitor.state("r0") == state


class TestEventLog:
    def test_transitions_append_ordered_events(self, monitor, clock):
        monitor.register("r0")
        clock.advance(1.0)
        monitor.observe("r0", False, detail="killed")
        clock.advance(2.0)
        monitor.set_state("r0", "restarting", detail="attempt 1")
        events = monitor.events_for("r0")
        assert [(e.prev, e.state) for e in events] == [
            ("up", "down"), ("down", "restarting"),
        ]
        assert events[0].at == 101.0
        assert events[1].at == 103.0
        assert events[0].detail == "killed"

    def test_no_event_without_a_transition(self, monitor):
        monitor.register("r0")
        monitor.observe("r0", True)
        monitor.observe("r0", True)
        assert monitor.events == []

    def test_events_survive_forget(self, monitor):
        monitor.register("r0")
        monitor.observe("r0", False)
        monitor.forget("r0")
        assert monitor.state("r0") is None
        assert len(monitor.events_for("r0")) == 1

    def test_listener_fires_per_transition(self, monitor):
        seen = []
        monitor.add_listener(seen.append)
        monitor.register("r0")
        monitor.observe("r0", False)
        monitor.observe("r0", True)
        assert [(e.member, e.state) for e in seen] == [
            ("r0", "down"), ("r0", "up"),
        ]
        assert all(isinstance(e, HealthEvent) for e in seen)

    def test_event_as_dict_is_json_safe(self, monitor):
        monitor.register("r0")
        monitor.observe("r0", False, detail="x")
        d = monitor.events[0].as_dict()
        assert d["member"] == "r0"
        assert d["prev"] == "up"
        assert d["state"] == "down"
        assert d["detail"] == "x"


class TestValidationAndStats:
    def test_lag_threshold_must_be_positive(self):
        with pytest.raises(ReproError):
            HealthMonitor(lag_threshold=0)

    def test_stats_shape(self, monitor):
        monitor.register("r0")
        monitor.observe("r0", True, lag=3)
        stats = monitor.stats()
        assert stats["lag_threshold"] == 8
        assert stats["members"]["r0"]["state"] == "up"
        assert stats["members"]["r0"]["lag"] == 3
        assert stats["events"] == 0
