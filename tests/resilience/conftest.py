"""Shared fixtures for the resilience suite: small supervised fleets."""

import time

import pytest

from repro.engine import EngineConfig, SPCEngine
from repro.graph.generators import erdos_renyi


def _await_true(predicate, timeout=10.0, interval=0.01):
    """Poll ``predicate`` until true or ``timeout``; returns the verdict."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def await_true():
    return _await_true


@pytest.fixture
def engine():
    graph = erdos_renyi(40, 90, seed=3)
    return SPCEngine(graph, config=EngineConfig(backend="core"))
