"""Failed-join detection: a wedged applier thread must not leak silently.

If ``kill()``'s join times out, a live thread would keep mutating the
engine under whatever replaces the member.  The contract: the member is
marked fatal ("failed to stop"), a ``RuntimeWarning`` is issued, and a
later ``close()`` raises.  The wedge is simulated with a thread stub
whose ``join`` returns immediately and whose ``is_alive`` lies — the
real applier still exits cleanly underneath, so nothing actually leaks
out of the test.
"""

import pytest

from repro.cluster import SPCCluster
from repro.exceptions import ClusterError, ShardError
from repro.shard import ShardedCluster
from repro.workloads import random_insertions


class WedgedThread:
    """Wraps the real applier thread, pretending it never stops."""

    def __init__(self, real):
        self._real = real

    def join(self, timeout=None):
        # Let the real thread wind down (its stop flag is already set)
        # without eating the member's full join budget.
        self._real.join(timeout=5.0)

    def is_alive(self):
        return True


def _grow(fleet, batches=4, seed=7):
    for update in random_insertions(
            fleet.primary.engine.graph, batches, seed=seed):
        fleet.submit(update)
    return fleet.sync()


class TestReplicaFailedJoin:
    def test_wedged_join_marks_fatal_and_warns(self, engine, tmp_path):
        cluster = SPCCluster(engine, str(tmp_path), replicas=1)
        try:
            _grow(cluster)
            name = sorted(cluster.replicas)[0]
            replica = cluster.replicas[name]
            replica._thread = WedgedThread(replica._thread)
            with pytest.warns(RuntimeWarning, match="failed to stop"):
                replica.kill()
            assert not replica.healthy
            assert isinstance(replica.fatal, ClusterError)
            assert "failed to stop" in str(replica.fatal)
        finally:
            # close() must surface the leaked thread, not absorb it.
            with pytest.warns(RuntimeWarning, match="failed to stop"):
                with pytest.raises(ClusterError, match="failed to stop"):
                    cluster.close()

    def test_wedge_does_not_displace_an_earlier_fatal(self, engine, tmp_path):
        cluster = SPCCluster(engine, str(tmp_path), replicas=1)
        try:
            _grow(cluster)
            name = sorted(cluster.replicas)[0]
            replica = cluster.replicas[name]
            first = ClusterError("original cause of death")
            replica._fatal = first
            replica._thread = WedgedThread(replica._thread)
            with pytest.warns(RuntimeWarning, match="failed to stop"):
                replica.kill()
            # The wedge is reported, but the recorded epitaph stays the
            # first fatal — the root cause outranks the symptom.
            assert replica.fatal is first
        finally:
            with pytest.warns(RuntimeWarning):
                with pytest.raises(ClusterError, match="original cause"):
                    cluster.close()


class TestShardFailedJoin:
    def test_wedged_join_marks_fatal_and_warns(self, engine, tmp_path):
        fleet = ShardedCluster(engine, str(tmp_path), shards=2)
        try:
            _grow(fleet)
            shard = fleet.shards[0]
            shard._thread = WedgedThread(shard._thread)
            with pytest.warns(RuntimeWarning, match="failed to stop"):
                shard.kill()
            assert not shard.healthy
            assert isinstance(shard.fatal, ShardError)
            assert "failed to stop" in str(shard.fatal)
        finally:
            with pytest.warns(RuntimeWarning, match="failed to stop"):
                with pytest.raises(ShardError, match="failed to stop"):
                    fleet.close()
