"""Unit tests for the graph algorithm toolkit."""

from repro.graph import (
    Graph,
    approximate_diameter,
    connected_components,
    degree_stats,
    induced_subgraph,
    is_connected,
    largest_component,
    path_graph,
)


class TestComponents:
    def test_single_component(self):
        g = path_graph(5)
        comps = connected_components(g)
        assert len(comps) == 1
        assert comps[0] == set(range(5))

    def test_multiple_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], vertices=[4])
        comps = sorted(connected_components(g), key=lambda c: sorted(c)[0])
        assert comps == [{0, 1}, {2, 3}, {4}]

    def test_is_connected(self):
        assert is_connected(path_graph(4))
        assert is_connected(Graph())  # vacuous
        g = Graph.from_edges([(0, 1)], vertices=[2])
        assert not is_connected(g)

    def test_largest_component(self):
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)])
        big = largest_component(g)
        assert sorted(big.vertices()) == [0, 1, 2]
        assert big.num_edges == 2

    def test_largest_component_empty(self):
        assert largest_component(Graph()).num_vertices == 0

    def test_induced_subgraph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        sub = induced_subgraph(g, [0, 1])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1


class TestDiameterAndDegrees:
    def test_approximate_diameter_path(self):
        g = path_graph(10)
        assert approximate_diameter(g, samples=4, seed=1) == 9

    def test_approximate_diameter_empty(self):
        assert approximate_diameter(Graph()) == 0

    def test_degree_stats(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        stats = degree_stats(g)
        assert stats["max"] == 3
        assert stats["min"] == 1
        assert stats["mean"] == 1.5
        assert stats["histogram"] == {3: 1, 1: 3}

    def test_degree_stats_empty(self):
        stats = degree_stats(Graph())
        assert stats == {"min": 0, "max": 0, "mean": 0.0, "histogram": {}}
