"""Unit tests for the synthetic graph generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    barabasi_albert,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    directed_scale_free,
    erdos_renyi,
    grid_graph,
    is_connected,
    path_graph,
    powerlaw_cluster,
    random_directed,
    random_tree,
    random_weighted,
    star_graph,
    watts_strogatz,
)


class TestBasicShapes:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g)
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10

    def test_complete_bipartite(self):
        g = complete_bipartite(2, 3)
        assert g.num_edges == 6
        assert not g.has_edge(0, 1)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_with_diagonals(self):
        g = grid_graph(5, 5, diagonal_prob=1.0)
        assert g.num_edges == 4 * 5 * 2 + 16


class TestRandomFamilies:
    def test_erdos_renyi_size(self):
        g = erdos_renyi(50, 120, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 120

    def test_erdos_renyi_too_many_edges(self):
        with pytest.raises(GraphError):
            erdos_renyi(4, 10)

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(30, 60, seed=7)
        b = erdos_renyi(30, 60, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_barabasi_albert(self):
        g = barabasi_albert(100, attach=3, seed=2)
        assert g.num_vertices == 100
        # Core clique of 4 plus 3 edges per later vertex.
        assert g.num_edges == 6 + 96 * 3
        assert is_connected(g)

    def test_barabasi_albert_heavy_tail(self):
        g = barabasi_albert(300, attach=2, seed=3)
        degs = sorted(g.degrees().values(), reverse=True)
        assert degs[0] >= 4 * degs[len(degs) // 2]

    def test_watts_strogatz(self):
        g = watts_strogatz(60, k=4, rewire_prob=0.2, seed=4)
        assert g.num_vertices == 60
        # Rewiring preserves the edge count.
        assert g.num_edges == 60 * 2

    def test_watts_strogatz_invalid_k(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, k=3)

    def test_powerlaw_cluster(self):
        g = powerlaw_cluster(200, attach=3, triangle_prob=0.7, seed=5)
        assert g.num_vertices == 200
        assert is_connected(g)

    def test_random_tree(self):
        g = random_tree(40, seed=6)
        assert g.num_edges == 39
        assert is_connected(g)

    def test_random_tree_tiny(self):
        assert random_tree(1).num_edges == 0
        assert random_tree(2).num_edges == 1


class TestDirectedAndWeighted:
    def test_random_directed(self):
        g = random_directed(30, 80, seed=1)
        assert g.num_vertices == 30
        assert g.num_edges == 80

    def test_directed_scale_free(self):
        g = directed_scale_free(100, attach=2, seed=8)
        assert g.num_vertices == 100
        assert g.num_edges >= 2 * 97

    def test_random_weighted_integer(self):
        g = random_weighted(40, 80, max_weight=5, seed=9)
        assert g.num_edges == 80
        assert all(1 <= w <= 5 and w == int(w) for _, _, w in g.edges())

    def test_random_weighted_float(self):
        g = random_weighted(40, 80, max_weight=5, seed=9, integer_weights=False)
        assert all(0.5 <= w <= 5.0 for _, _, w in g.edges())
