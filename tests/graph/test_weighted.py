"""Unit tests for the WeightedGraph substrate."""

import pytest

from repro.exceptions import DuplicateEdge, EdgeNotFound, GraphError, VertexNotFound
from repro.graph import WeightedGraph


class TestWeightedGraph:
    def test_from_edges_and_weight(self):
        g = WeightedGraph.from_edges([(0, 1, 2.5), (1, 2, 1)])
        assert g.weight(0, 1) == 2.5
        assert g.weight(1, 0) == 2.5
        assert g.num_edges == 2

    def test_positive_weight_enforced(self):
        g = WeightedGraph()
        g.add_vertex(0)
        g.add_vertex(1)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1.5)

    def test_set_weight(self):
        g = WeightedGraph.from_edges([(0, 1, 3)])
        old = g.set_weight(0, 1, 5)
        assert old == 3
        assert g.weight(1, 0) == 5
        with pytest.raises(GraphError):
            g.set_weight(0, 1, 0)

    def test_set_weight_missing_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 3)], vertices=[2])
        with pytest.raises(EdgeNotFound):
            g.set_weight(0, 2, 1)

    def test_remove_edge_returns_weight(self):
        g = WeightedGraph.from_edges([(0, 1, 4)])
        assert g.remove_edge(0, 1) == 4
        assert g.num_edges == 0

    def test_remove_vertex_returns_triples(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 2)])
        removed = g.remove_vertex(0)
        assert sorted(removed) == [(0, 1, 1), (0, 2, 2)]

    def test_duplicate_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1)])
        with pytest.raises(DuplicateEdge):
            g.add_edge(1, 0, 2)

    def test_neighbors_view(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 2)])
        assert g.neighbors(0) == {1: 1, 2: 2}
        with pytest.raises(VertexNotFound):
            g.neighbors(9)

    def test_edges_iteration(self):
        g = WeightedGraph.from_edges([(1, 0, 3), (1, 2, 4)])
        assert sorted(g.edges()) == [(0, 1, 3), (1, 2, 4)]

    def test_copy_independent(self):
        g = WeightedGraph.from_edges([(0, 1, 1)])
        h = g.copy()
        h.set_weight(0, 1, 9)
        assert g.weight(0, 1) == 1
