"""Unit tests for the undirected Graph substrate."""

import pytest

from repro.exceptions import (
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    SelfLoop,
    VertexNotFound,
)
from repro.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_from_edges_with_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], vertices=[5, 6])
        assert g.num_vertices == 4
        assert g.degree(5) == 0

    def test_from_edges_rejects_duplicates(self):
        with pytest.raises(DuplicateEdge):
            Graph.from_edges([(0, 1), (1, 0)])

    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1)])
        h = g.copy()
        h.add_vertex(2)
        h.add_edge(1, 2)
        assert g.num_vertices == 2
        assert h.num_edges == 2


class TestMutation:
    def test_add_vertex_duplicate(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(DuplicateVertex):
            g.add_vertex(0)
        g.add_vertex(0, exist_ok=True)  # no raise

    def test_add_edge_missing_vertex(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(VertexNotFound):
            g.add_edge(0, 1)

    def test_add_edge_self_loop(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(SelfLoop):
            g.add_edge(0, 0)

    def test_add_edge_duplicate(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(DuplicateEdge):
            g.add_edge(1, 0)

    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_remove_missing_edge(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        with pytest.raises(EdgeNotFound):
            g.remove_edge(0, 2)

    def test_remove_vertex_returns_removed_edges(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
        removed = g.remove_vertex(0)
        assert sorted(removed) == [(0, 1), (0, 2)]
        assert g.num_edges == 1
        assert 0 not in g

    def test_remove_missing_vertex(self):
        g = Graph()
        with pytest.raises(VertexNotFound):
            g.remove_vertex(7)


class TestAccessors:
    def test_neighbors_and_degree(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        assert sorted(g.neighbors(0)) == [1, 2]
        assert g.degree(0) == 2
        assert g.degree(1) == 1

    def test_neighbors_missing_vertex(self):
        g = Graph()
        with pytest.raises(VertexNotFound):
            g.neighbors(3)

    def test_edges_canonical_and_unique(self):
        g = Graph.from_edges([(2, 1), (0, 2)])
        assert sorted(g.edges()) == [(0, 2), (1, 2)]

    def test_degrees_map(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.degrees() == {0: 1, 1: 2, 2: 1}

    def test_contains_len_iter(self):
        g = Graph.from_edges([(0, 1)])
        assert 0 in g and 5 not in g
        assert len(g) == 2
        assert sorted(g) == [0, 1]

    def test_equality(self):
        a = Graph.from_edges([(0, 1)])
        b = Graph.from_edges([(1, 0)])
        assert a == b
        b.add_vertex(2)
        assert a != b
