"""Unit tests for the DiGraph substrate."""

import pytest

from repro.exceptions import DuplicateEdge, EdgeNotFound, SelfLoop, VertexNotFound
from repro.graph import DiGraph


class TestDiGraph:
    def test_arcs_are_directed(self):
        g = DiGraph.from_edges([(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_successors_predecessors(self):
        g = DiGraph.from_edges([(0, 1), (2, 1)])
        assert sorted(g.successors(0)) == [1]
        assert sorted(g.predecessors(1)) == [0, 2]

    def test_degrees(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (3, 0)])
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 1
        assert g.degree(0) == 3

    def test_reverse_arc_is_distinct(self):
        g = DiGraph.from_edges([(0, 1)])
        g.add_edge(1, 0)  # both directions may coexist
        assert g.num_edges == 2

    def test_duplicate_arc_rejected(self):
        g = DiGraph.from_edges([(0, 1)])
        with pytest.raises(DuplicateEdge):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = DiGraph()
        g.add_vertex(0)
        with pytest.raises(SelfLoop):
            g.add_edge(0, 0)

    def test_remove_edge_direction_sensitive(self):
        g = DiGraph.from_edges([(0, 1), (1, 0)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        with pytest.raises(EdgeNotFound):
            g.remove_edge(0, 1)

    def test_remove_vertex(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        removed = g.remove_vertex(0)
        assert sorted(removed) == [(0, 1), (2, 0)]
        assert g.num_edges == 1

    def test_missing_vertex(self):
        g = DiGraph()
        with pytest.raises(VertexNotFound):
            g.successors(1)

    def test_to_undirected(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (1, 2)])
        u = g.to_undirected()
        assert u.num_edges == 2
        assert u.has_edge(0, 1) and u.has_edge(2, 1)

    def test_copy_independent(self):
        g = DiGraph.from_edges([(0, 1)])
        h = g.copy()
        h.remove_edge(0, 1)
        assert g.has_edge(0, 1)
