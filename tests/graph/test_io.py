"""Unit tests for edge-list I/O."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    Graph,
    WeightedGraph,
    read_edge_list,
    read_weighted_edge_list,
    write_edge_list,
)


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path, header="test graph")
        h = read_edge_list(path)
        assert sorted(h.edges()) == sorted(g.edges())

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% konect comment\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_directed_dump_deduplicated(self, tmp_path):
        # SNAP dumps of directed graphs list both arc directions.
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        g = read_edge_list(path)
        assert g.num_edges == 1

    def test_directed_read(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n")
        g = read_edge_list(path, directed=True)
        assert g.num_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_weighted_roundtrip(self, tmp_path):
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 3.5)])
        path = tmp_path / "w.txt"
        write_edge_list(g, path)
        h = read_weighted_edge_list(path)
        assert sorted(h.edges()) == sorted(g.edges())

    def test_weighted_malformed(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError):
            read_weighted_edge_list(path)
