"""Unit tests for BFS counting engines."""

from repro.graph import Graph, complete_bipartite, cycle_graph, path_graph
from repro.traversal import (
    INF,
    all_pairs_counting,
    bfs_counting_pair,
    bfs_counting_sssp,
    bfs_distance_sssp,
    directed_bfs_counting_sssp,
    restricted_bfs_counting,
)


class TestSSSPCounting:
    def test_path_graph(self):
        g = path_graph(4)
        dist, count = bfs_counting_sssp(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3}
        assert count == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_diamond_counts_two_paths(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        dist, count = bfs_counting_sssp(g, 0)
        assert dist[3] == 2
        assert count[3] == 2

    def test_complete_bipartite_counting(self):
        # K_{2,3}: between the two left vertices there are 3 paths of len 2.
        g = complete_bipartite(2, 3)
        dist, count = bfs_counting_sssp(g, 0)
        assert dist[1] == 2
        assert count[1] == 3

    def test_unreachable_vertices_absent(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        dist, count = bfs_counting_sssp(g, 0)
        assert 2 not in dist and 2 not in count

    def test_distance_only_matches_counting(self):
        g = cycle_graph(7)
        assert bfs_distance_sssp(g, 0) == bfs_counting_sssp(g, 0)[0]

    def test_even_cycle_two_paths_to_antipode(self):
        g = cycle_graph(6)
        _, count = bfs_counting_sssp(g, 0)
        assert count[3] == 2


class TestPairCounting:
    def test_pair_matches_sssp(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        dist, count = bfs_counting_sssp(g, 0)
        for t in [1, 2, 3, 4]:
            assert bfs_counting_pair(g, 0, t) == (dist[t], count[t])

    def test_self_pair(self):
        g = path_graph(3)
        assert bfs_counting_pair(g, 1, 1) == (0, 1)

    def test_disconnected_pair(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        assert bfs_counting_pair(g, 0, 2) == (INF, 0)

    def test_counts_final_at_target_level(self):
        # Both length-2 paths must be counted even though the BFS could
        # reach the target before finishing the level.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert bfs_counting_pair(g, 0, 3) == (2, 2)


class TestAllPairsAndRestricted:
    def test_all_pairs_symmetry(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        answers = all_pairs_counting(g)
        for (s, t), v in answers.items():
            assert answers[(t, s)] == v

    def test_all_pairs_disconnected(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        answers = all_pairs_counting(g)
        assert answers[(0, 2)] == (INF, 0)

    def test_restricted_bfs_blocks_vertices(self):
        # 0-1-2 and 0-3-2: restricting out vertex 1 leaves one path.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
        allowed = {0, 2, 3}
        dist, count = restricted_bfs_counting(g, 0, allowed)
        assert dist[2] == 2
        assert count[2] == 1
        assert 1 not in dist


class TestDirectedBFS:
    def test_forward_vs_reverse(self):
        from repro.graph import DiGraph

        g = DiGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        dist_f, count_f = directed_bfs_counting_sssp(g, 0)
        assert dist_f == {0: 0, 1: 1, 2: 1}
        dist_r, count_r = directed_bfs_counting_sssp(g, 2, reverse=True)
        assert dist_r == {2: 0, 1: 1, 0: 1}
        assert count_r[0] == 1

    def test_directed_counting(self):
        from repro.graph import DiGraph

        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        _, count = directed_bfs_counting_sssp(g, 0)
        assert count[3] == 2
