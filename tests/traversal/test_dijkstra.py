"""Unit tests for Dijkstra counting on weighted graphs."""

import random

from repro.graph import WeightedGraph, random_weighted
from repro.traversal import INF, dijkstra_counting_pair, dijkstra_counting_sssp


def brute_force_counting(graph, source):
    """Exponential reference: enumerate all simple paths (tiny graphs only)."""
    paths = {}

    def enumerate_paths(v, seen, length):
        paths.setdefault(v, []).append(length)
        for w, weight in graph.neighbors(v).items():
            if w not in seen:
                enumerate_paths(w, seen | {w}, length + weight)

    enumerate_paths(source, {source}, 0)
    result = {}
    for v, lengths in paths.items():
        m = min(lengths)
        result[v] = (m, lengths.count(m))
    return result


class TestDijkstraCounting:
    def test_weighted_diamond(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 2), (1, 3, 2), (2, 3, 1)])
        dist, count = dijkstra_counting_sssp(g, 0)
        assert dist[3] == 3
        assert count[3] == 2

    def test_unequal_weights_single_path(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 2)])
        dist, count = dijkstra_counting_sssp(g, 0)
        assert dist[3] == 2
        assert count[3] == 1

    def test_matches_brute_force_random(self):
        rng = random.Random(7)
        for trial in range(15):
            n = rng.randint(4, 9)
            m = rng.randint(n - 1, n * (n - 1) // 2)
            g = random_weighted(n, m, max_weight=4, seed=trial)
            expected = brute_force_counting(g, 0)
            dist, count = dijkstra_counting_sssp(g, 0)
            for v, (d, c) in expected.items():
                assert dist[v] == d, f"trial={trial} v={v}"
                assert count[v] == c, f"trial={trial} v={v}"

    def test_pair_query(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (1, 2, 1), (0, 2, 2)])
        assert dijkstra_counting_pair(g, 0, 2) == (2, 2)
        assert dijkstra_counting_pair(g, 0, 0) == (0, 1)

    def test_pair_disconnected(self):
        g = WeightedGraph.from_edges([(0, 1, 1)])
        g.add_vertex(9)
        assert dijkstra_counting_pair(g, 0, 9) == (INF, 0)

    def test_fractional_weights(self):
        g = WeightedGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5), (0, 2, 1.0)])
        dist, count = dijkstra_counting_sssp(g, 0)
        assert dist[2] == 1.0
        assert count[2] == 2
