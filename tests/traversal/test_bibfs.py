"""Unit tests for bidirectional BFS counting — including the classic traps."""

import random

from repro.graph import (
    Graph,
    complete_bipartite,
    cycle_graph,
    erdos_renyi,
    path_graph,
)
from repro.traversal import INF, bfs_counting_pair, bibfs_counting


class TestBiBFSBasics:
    def test_self_pair(self):
        g = path_graph(3)
        assert bibfs_counting(g, 0, 0) == (0, 1)

    def test_adjacent(self):
        g = path_graph(3)
        assert bibfs_counting(g, 0, 1) == (1, 1)

    def test_disconnected(self):
        g = Graph.from_edges([(0, 1)], vertices=[2])
        assert bibfs_counting(g, 0, 2) == (INF, 0)

    def test_diamond(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert bibfs_counting(g, 0, 3) == (2, 2)

    def test_odd_path_meeting_at_edge(self):
        # Odd distances force the "frontiers meet across an edge" case.
        g = path_graph(6)
        assert bibfs_counting(g, 0, 5) == (5, 1)

    def test_even_cycle_antipodes(self):
        g = cycle_graph(8)
        assert bibfs_counting(g, 0, 4) == (4, 2)

    def test_odd_cycle(self):
        g = cycle_graph(7)
        assert bibfs_counting(g, 0, 3) == (3, 1)

    def test_complete_bipartite_many_paths(self):
        g = complete_bipartite(4, 5)
        assert bibfs_counting(g, 0, 1) == (2, 5)

    def test_parallel_chains(self):
        # Three vertex-disjoint chains of length 4 between s and t.
        edges = []
        for chain in range(3):
            a, b, c = 2 + 3 * chain, 3 + 3 * chain, 4 + 3 * chain
            edges += [(0, a), (a, b), (b, c), (c, 1)]
        g = Graph.from_edges(edges)
        assert bibfs_counting(g, 0, 1) == (4, 3)


class TestBiBFSAgainstBFS:
    def test_random_graphs_match_unidirectional(self):
        rng = random.Random(42)
        for trial in range(25):
            n = rng.randint(6, 40)
            m = rng.randint(n - 1, min(3 * n, n * (n - 1) // 2))
            g = erdos_renyi(n, m, seed=trial)
            for _ in range(10):
                s = rng.randrange(n)
                t = rng.randrange(n)
                assert bibfs_counting(g, s, t) == bfs_counting_pair(g, s, t), (
                    f"trial={trial} pair=({s},{t})"
                )

    def test_asymmetric_degrees(self):
        # A star meeting a long path stresses the smaller-frontier policy.
        edges = [(0, i) for i in range(1, 30)]
        edges += [(29, 30), (30, 31), (31, 32)]
        g = Graph.from_edges(edges)
        assert bibfs_counting(g, 1, 32) == bfs_counting_pair(g, 1, 32)
