"""Exposition: Prometheus text format, JSON snapshots, --telemetry files."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    to_json,
    to_prometheus_text,
    write_files,
)


def make_registry():
    r = MetricsRegistry()
    r.counter("repro_test_ops", backend="core").inc(3)
    r.gauge("repro_test_level").set(2.5)
    h = r.histogram("repro_test_latency_seconds")
    for v in (0.001, 0.001, 0.004):
        h.observe(v)
    return r


class TestPrometheusText:
    def test_counters_render_with_total_suffix(self):
        text = to_prometheus_text(make_registry())
        assert "# TYPE repro_test_ops_total counter" in text
        assert 'repro_test_ops_total{backend="core"} 3' in text

    def test_gauges_render_bare(self):
        text = to_prometheus_text(make_registry())
        assert "# TYPE repro_test_level gauge" in text
        assert "repro_test_level 2.5" in text

    def test_histograms_render_cumulative_buckets_sum_count(self):
        text = to_prometheus_text(make_registry())
        lines = text.splitlines()
        buckets = [l for l in lines
                   if l.startswith("repro_test_latency_seconds_bucket")]
        # Occupied buckets plus the +Inf catch-all, cumulative.
        assert buckets[-1].endswith(" 3")
        assert 'le="+Inf"' in buckets[-1]
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert "repro_test_latency_seconds_count 3" in text
        assert any(l.startswith("repro_test_latency_seconds_sum ")
                   for l in lines)

    def test_dead_callback_gauges_are_skipped_not_fatal(self):
        r = MetricsRegistry()

        def boom():
            raise RuntimeError("gone")

        r.gauge("repro_test_dead", fn=boom)
        r.counter("repro_test_ops").inc()
        text = to_prometheus_text(r)
        assert "repro_test_dead" not in text
        assert "repro_test_ops_total 1" in text

    def test_rendering_is_deterministic(self):
        assert to_prometheus_text(make_registry()) \
            == to_prometheus_text(make_registry())

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestJson:
    def test_document_shape(self):
        doc = json.loads(to_json(make_registry()))
        assert doc["metrics"]["counters"] == {
            'repro_test_ops{backend="core"}': 3.0,
        }
        assert doc["metrics"]["gauges"]["repro_test_level"] == 2.5
        hist = doc["metrics"]["histograms"]["repro_test_latency_seconds"]
        assert hist["count"] == 3

    def test_tracer_stats_and_slow_traces_included(self):
        tracer = Tracer(slow_threshold=0.010)
        trace = tracer.begin("shard_query")
        trace.add("scatter", 0.015)
        trace.finish(0.020)
        doc = json.loads(to_json(make_registry(), tracer=tracer))
        assert doc["tracer"]["slow_recorded"] == 1
        assert doc["slow_traces"][0]["trace_id"] == "t-000001"
        assert doc["slow_traces"][0]["root"]["children"][0]["name"] \
            == "scatter"


class TestWriteFiles:
    def test_writes_prom_and_json_pair(self, tmp_path):
        tracer = Tracer()
        prom, js = write_files(make_registry(), tmp_path,
                               tracer=tracer, stem="unit")
        assert prom.endswith("unit.prom") and js.endswith("unit.json")
        assert "repro_test_ops_total" in open(prom).read()
        doc = json.loads(open(js).read())
        assert "metrics" in doc and "tracer" in doc

    def test_creates_the_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        prom, _ = write_files(make_registry(), str(target))
        assert open(prom).read()
