"""The obs loadgen's two contracts, at test scale: per-stage totals
reconcile exactly against end-to-end latency, and a seeded run
reproduces identical counter values."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.loadgen import STAGES, run_obs_loadgen

QUICK = dict(n=100, m=300, shards=2, churn=12, phases=2,
             reads_per_phase=40, seed=0)


@pytest.fixture(scope="module")
def report():
    return run_obs_loadgen(**QUICK)


class TestStageBreakdown:
    def test_every_stage_histogram_is_populated(self, report):
        registry = report["registry"]
        for stage in STAGES:
            hist = registry.get("repro_shard_stage_seconds", stage=stage)
            assert hist is not None and hist.count > 0, stage

    def test_stage_sum_reconciles_exactly_with_e2e(self, report):
        # The explicit `unattributed` stage makes the identity exact:
        # both sides add up the very same perf_counter differences.
        registry = report["registry"]
        stage_sum = sum(
            registry.get("repro_shard_stage_seconds", stage=s).total
            for s in STAGES
        )
        e2e = registry.get("repro_shard_read_latency_seconds")
        assert stage_sum == pytest.approx(e2e.total, rel=1e-9)

    def test_read_count_matches_the_workload(self, report):
        registry = report["registry"]
        e2e = registry.get("repro_shard_read_latency_seconds")
        assert e2e.count == report["reads"]


class TestDeterminism:
    def test_same_seed_reproduces_every_counter(self, report):
        again = run_obs_loadgen(**QUICK)
        assert report["counter_values"] == again["counter_values"]
        assert report["counter_values"], "fingerprint must be non-empty"

    def test_different_seed_diverges(self, report):
        other = run_obs_loadgen(**dict(QUICK, seed=1))
        assert report["counter_values"] != other["counter_values"]


class TestInstrumentationToggle:
    def test_uninstrumented_run_registers_nothing(self):
        registry = MetricsRegistry()
        run_obs_loadgen(**QUICK, instrument=False, registry=registry)
        assert len(registry) == 0

    def test_trace_ids_propagate_to_retained_traces(self, report):
        tracer = report["tracer"]
        traces = tracer.recent()
        assert traces, "tracer retained nothing"
        ids = [t.trace_id for t in traces]
        assert len(set(ids)) == len(ids)
        assert all(t.finished for t in traces)
        # Sampled scatter-gather traces carry per-stage child spans.
        assert any(t.root.children for t in traces)
