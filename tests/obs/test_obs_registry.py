"""MetricsRegistry and its three instrument kinds (DESIGN.md §16)."""

import math

import pytest

from repro.exceptions import ObsError
from repro.obs import (
    SUBBUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper,
    render_key,
)


class TestBucketing:
    def test_nonpositive_values_take_the_reserved_bucket(self):
        assert bucket_index(0.0) is None
        assert bucket_index(-1.0) is None

    def test_buckets_are_geometric_with_subbucket_resolution(self):
        # Doubling a value advances exactly SUBBUCKETS buckets.
        for value in (1e-6, 3.7e-4, 0.01, 1.0, 17.3):
            assert (bucket_index(value * 2.0)
                    == bucket_index(value) + SUBBUCKETS)

    def test_value_lies_inside_its_bucket(self):
        # Buckets are lower-inclusive / upper-exclusive: a value sitting
        # exactly on an edge (powers of two) belongs to the bucket above.
        for value in (1e-7, 2.5e-4, 0.125, 0.9999, 1.0, 42.0):
            index = bucket_index(value)
            upper = bucket_upper(index)
            lower = bucket_upper(index - 1)
            assert lower <= value < upper or math.isclose(value, lower)

    def test_bucket_width_is_under_twenty_percent(self):
        for index in (-40, -1, 0, 7, 80):
            ratio = bucket_upper(index) / bucket_upper(index - 1)
            assert ratio == pytest.approx(2.0 ** (1.0 / SUBBUCKETS))
            assert ratio < 1.20

    def test_bucketing_is_deterministic(self):
        values = [0.1 * k + 1e-9 for k in range(100)]
        assert ([bucket_index(v) for v in values]
                == [bucket_index(v) for v in values])


class TestCounter:
    def test_increments_accumulate(self):
        c = Counter("repro_test_ops")
        c.inc()
        c.inc(2.5)
        assert c.snapshot() == 3.5

    def test_decrease_raises(self):
        c = Counter("repro_test_ops")
        with pytest.raises(ObsError, match="cannot decrease"):
            c.inc(-1)

    def test_merge_adds(self):
        a, b = Counter("n"), Counter("n")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("repro_test_level")
        g.set(5)
        g.inc(-2)
        assert g.snapshot() == 3.0

    def test_callback_gauge_reads_live_state(self):
        state = {"v": 1}
        g = Gauge("repro_test_live", fn=lambda: state["v"])
        assert g.snapshot() == 1.0
        state["v"] = 9
        assert g.snapshot() == 9.0

    def test_callback_gauge_cannot_be_set(self):
        g = Gauge("repro_test_live", fn=lambda: 1)
        with pytest.raises(ObsError, match="bound to a callback"):
            g.set(2)
        with pytest.raises(ObsError, match="bound to a callback"):
            g.inc()

    def test_dead_callback_reads_as_none(self):
        def boom():
            raise RuntimeError("component torn down")

        assert Gauge("g", fn=boom).snapshot() is None

    def test_non_numeric_callback_reads_as_none(self):
        assert Gauge("g", fn=lambda: "primary").snapshot() is None
        assert Gauge("g", fn=lambda: float("nan")).snapshot() is None

    def test_raw_bool_callback_reads_as_none(self):
        # A raw bool is not a level; the bind layer converts booleans to
        # 0/1 inside its reader before the gauge ever sees them.
        assert Gauge("g", fn=lambda: True).snapshot() is None


class TestHistogram:
    def test_observe_folds_count_sum_min_max(self):
        h = Histogram("repro_test_latency_seconds")
        for v in (0.5, 0.25, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(2.75)
        assert h.min == 0.25
        assert h.max == 2.0
        assert h.mean() == pytest.approx(2.75 / 3)

    def test_zero_observations_take_the_zero_bucket(self):
        h = Histogram("h")
        h.observe(0.0)
        h.observe(1.0)
        assert h.zero_count == 1
        assert h.count == 2
        assert h.percentile(50) == 0.0

    def test_percentile_is_clamped_into_observed_range(self):
        h = Histogram("h")
        for _ in range(100):
            h.observe(1.0)
        # The bucket upper edge overestimates; the clamp pins it to max.
        assert h.percentile(50) == 1.0
        assert h.percentile(99) == 1.0

    def test_percentile_overestimates_by_at_most_bucket_width(self):
        h = Histogram("h")
        values = [0.001 * (k + 1) for k in range(1000)]
        for v in values:
            h.observe(v)
        exact_p50 = sorted(values)[499]
        p50 = h.percentile(50)
        assert exact_p50 <= p50 <= exact_p50 * 2.0 ** (1.0 / SUBBUCKETS)

    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("h")
        assert h.percentile(50) is None
        assert h.mean() is None
        assert h.snapshot()["count"] == 0

    def test_merge_equals_union_recording(self):
        a, b, union = Histogram("h"), Histogram("h"), Histogram("h")
        for v in (0.1, 0.2, 0.0):
            a.observe(v)
            union.observe(v)
        for v in (0.05, 3.0):
            b.observe(v)
            union.observe(v)
        a.merge(b)
        assert a.buckets == union.buckets
        assert a.zero_count == union.zero_count
        assert a.count == union.count
        assert a.total == pytest.approx(union.total)
        assert (a.min, a.max) == (union.min, union.max)

    def test_copy_is_independent(self):
        h = Histogram("h")
        h.observe(1.0)
        clone = h.copy()
        clone.observe(2.0)
        assert h.count == 1 and clone.count == 2

    def test_bucket_table_is_cumulative(self):
        h = Histogram("h")
        for v in (0.1, 0.1, 0.4, 1.6):
            h.observe(v)
        table = h.bucket_table()
        counts = [c for _upper, c in table]
        assert counts == sorted(counts)
        assert counts[-1] == 4


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("repro_test_ops") is r.counter("repro_test_ops")

    def test_labels_split_instruments(self):
        r = MetricsRegistry()
        a = r.counter("repro_test_ops", target="primary")
        b = r.counter("repro_test_ops", target="replica_0")
        assert a is not b
        a.inc()
        assert r.get("repro_test_ops", target="primary").value == 1
        assert r.get("repro_test_ops", target="replica_0").value == 0

    def test_label_order_does_not_matter(self):
        r = MetricsRegistry()
        a = r.counter("n", x="1", y="2")
        b = r.counter("n", y="2", x="1")
        assert a is b

    def test_kind_clash_raises(self):
        r = MetricsRegistry()
        r.counter("repro_test_ops")
        with pytest.raises(ObsError, match="already registered as counter"):
            r.gauge("repro_test_ops")

    def test_invalid_name_raises(self):
        with pytest.raises(ObsError, match="invalid metric name"):
            MetricsRegistry().counter("repro test ops")

    def test_rebinding_a_callback_gauge_replaces_the_callback(self):
        # A restarted component re-binds over its predecessor's gauge.
        r = MetricsRegistry()
        r.gauge("g", fn=lambda: 1)
        r.gauge("g", fn=lambda: 2)
        assert r.get("g").snapshot() == 2.0

    def test_snapshot_drops_dead_callback_gauges(self):
        r = MetricsRegistry()

        def boom():
            raise RuntimeError("gone")

        r.gauge("repro_test_dead", fn=boom)
        r.gauge("repro_test_live", fn=lambda: 7)
        snap = r.snapshot()
        assert "repro_test_dead" not in snap["gauges"]
        assert snap["gauges"]["repro_test_live"] == 7.0

    def test_counter_values_fingerprint(self):
        r = MetricsRegistry()
        r.counter("repro_test_ops").inc(3)
        r.histogram("repro_test_lat").observe(0.5)
        r.gauge("repro_test_level").set(9)  # timings/levels excluded
        assert r.counter_values() == {
            "repro_test_ops": 3.0,
            "repro_test_lat:count": 1,
        }

    def test_merge_rolls_up_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.histogram("h", shard="1").observe(0.5)
        a.merge(b)
        assert a.get("c").value == 3
        assert a.get("h", shard="1").count == 1

    def test_render_key(self):
        assert render_key("n", ()) == "n"
        assert (render_key("n", (("a", "1"), ("b", "2")))
                == 'n{a="1",b="2"}')
