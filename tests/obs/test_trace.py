"""Query-path tracing: span trees, id propagation, bounded retention."""

import pytest

from repro.obs import QueryTrace, Span, Tracer


class TestSpan:
    def test_children_attribute_time(self):
        root = Span("query", 0.010)
        root.add("scatter", 0.006)
        root.add("merge", 0.001)
        assert root.child_total() == pytest.approx(0.007)
        assert root.unattributed() == pytest.approx(0.003)

    def test_to_dict_round_trip_shape(self):
        root = Span("query", 0.010, meta={"target": "primary"})
        root.add("scatter", 0.006)
        d = root.to_dict()
        assert d["name"] == "query"
        assert d["meta"] == {"target": "primary"}
        assert [c["name"] for c in d["children"]] == ["scatter"]


class TestQueryTrace:
    def test_finish_files_into_its_tracer(self):
        tracer = Tracer()
        trace = tracer.begin("shard_query")
        trace.add("scatter", 0.002)
        trace.finish(0.003)
        assert trace.finished
        assert tracer.recorded == 1
        assert tracer.recent()[-1] is trace

    def test_stage_totals_fold_repeated_stages(self):
        trace = QueryTrace("t-000001", "shard_query")
        trace.add("shard_probe", 0.001)
        trace.add("shard_probe", 0.002)
        trace.add("merge", 0.0005)
        totals = trace.stage_totals()
        assert totals["shard_probe"] == pytest.approx(0.003)
        assert totals["merge"] == pytest.approx(0.0005)


class TestTracer:
    def test_trace_ids_are_deterministic(self):
        ids = [Tracer().begin("q").trace_id for _ in range(3)]
        assert ids == ["t-000001", "t-000001", "t-000001"]
        tracer = Tracer()
        assert [tracer.begin("q").trace_id for _ in range(3)] == [
            "t-000001", "t-000002", "t-000003",
        ]

    def test_sampling_gate_is_counter_based(self):
        tracer = Tracer(sample_every=3)
        admitted = [tracer.maybe_begin("q") is not None for _ in range(9)]
        assert admitted == [False, False, True] * 3

    def test_recent_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for _ in range(10):
            tracer.begin("q").finish(0.001)
        assert len(tracer.recent()) == 4
        assert tracer.stats()["recorded"] == 10

    def test_slow_traces_survive_fast_floods(self):
        tracer = Tracer(capacity=2, slow_threshold=0.010)
        slow = tracer.begin("q")
        slow.finish(0.050)
        for _ in range(100):  # fast traffic rolls the recent ring over
            tracer.begin("q").finish(0.001)
        assert slow not in tracer.recent()
        assert tracer.slow() == [slow]

    def test_only_slow_traces_evict_slow_traces(self):
        tracer = Tracer(slow_capacity=2, slow_threshold=0.010)
        first, second, third = (tracer.begin("q") for _ in range(3))
        first.finish(0.011)
        second.finish(0.012)
        third.finish(0.013)
        assert [t.trace_id for t in tracer.slow()] == [
            second.trace_id, third.trace_id,
        ]

    def test_stage_totals_filter_by_root_name(self):
        tracer = Tracer()
        a = tracer.begin("shard_query")
        a.add("scatter", 0.002)
        a.finish(0.003)
        b = tracer.begin("writer_batch")
        b.add("wal_append", 0.004)
        b.finish(0.005)
        assert tracer.stage_totals("shard_query") == {
            "scatter": pytest.approx(0.002),
        }
        assert set(tracer.stage_totals()) == {"scatter", "wal_append"}

    def test_stats_shape(self):
        tracer = Tracer(sample_every=2, slow_threshold=0.010)
        tracer.maybe_begin("q")
        trace = tracer.maybe_begin("q")
        trace.finish(0.020)
        assert tracer.stats() == {
            "sample_every": 2,
            "slow_threshold_s": 0.010,
            "started": 1,
            "recorded": 1,
            "slow_recorded": 1,
            "recent_held": 1,
            "slow_held": 1,
        }

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0},
        {"slow_capacity": 0},
        {"slow_threshold": -1},
        {"sample_every": 0},
    ])
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            Tracer(**kwargs)
