"""The stats-promotion parity contract: every per-subsystem ``stats()``
accessor promoted into the shared :class:`MetricsRegistry` must agree
with the live accessor at exposition time — by construction (callback
gauges re-read the accessor), and pinned here against real components.
"""

import pytest

import repro
from repro.audit import AuditSampler, ShadowAuditor
from repro.obs import MetricsRegistry, bind_stats, render_key
from repro.obs.bind import _leaf_paths, _numeric, _sanitize
from repro.serve import ServeConfig, SPCService
from repro.workloads import InsertEdge


def flatten(prefix, sample, path=()):
    """The same flattening the bind layer performs, independently."""
    out = {}
    if isinstance(sample, dict):
        for key, value in sample.items():
            out.update(flatten(prefix, value, path + (key,)))
        return out
    value = _numeric(sample)
    if value is not None:
        out["_".join([prefix] + [_sanitize(p) for p in path])] = value
    return out


def assert_parity(registry, prefix, stats_fn):
    """Every promoted gauge equals the live accessor's leaf, right now."""
    expected = flatten(prefix, stats_fn())
    assert expected, "accessor exposed no numeric leaves"
    gauges = {
        m.name: m.snapshot()
        for m in registry.collect()
        if m.kind == "gauge" and m.name.startswith(prefix + "_")
    }
    for name, value in expected.items():
        assert name in gauges, f"leaf {name} was not promoted"
        assert gauges[name] == pytest.approx(value), name


class TestBindStats:
    def test_registers_one_gauge_per_numeric_leaf(self):
        registry = MetricsRegistry()
        names = bind_stats(
            registry, "repro_test",
            lambda: {"a": 1, "nested": {"b": 2.5}, "skip": "text"},
        )
        assert sorted(names) == ["repro_test_a", "repro_test_nested_b"]
        assert registry.get("repro_test_a").snapshot() == 1.0
        assert registry.get("repro_test_nested_b").snapshot() == 2.5

    def test_gauges_track_the_live_accessor(self):
        state = {"depth": 0}
        registry = MetricsRegistry()
        bind_stats(registry, "repro_test", lambda: state)
        state["depth"] = 42
        assert registry.get("repro_test_depth").snapshot() == 42.0

    def test_bools_promote_as_zero_one(self):
        registry = MetricsRegistry()
        bind_stats(registry, "repro_test", lambda: {"healthy": True})
        assert registry.get("repro_test_healthy").snapshot() == 1.0

    def test_hostile_key_names_are_sanitized(self):
        registry = MetricsRegistry()
        names = bind_stats(
            registry, "repro_test",
            lambda: {"per-target p99.9": 7},
        )
        assert names == ["repro_test_per_target_p99_9"]

    def test_labels_ride_along(self):
        registry = MetricsRegistry()
        bind_stats(registry, "repro_test", lambda: {"x": 1},
                   target="replica_0")
        gauge = registry.get("repro_test_x", target="replica_0")
        assert gauge.snapshot() == 1.0
        assert render_key(gauge.name, gauge.labels) \
            == 'repro_test_x{target="replica_0"}'

    def test_leaf_discovery_matches_independent_flattening(self):
        sample = {"a": 1, "b": {"c": True, "d": "s", "e": {"f": 0.5}}}
        paths = set(_leaf_paths(sample))
        assert paths == {("a",), ("b", "c"), ("b", "e", "f")}


@pytest.fixture
def service(paper_graph):
    with SPCService(repro.open(paper_graph),
                    config=ServeConfig(publish_every=1)) as svc:
        svc.submit(InsertEdge(0, 5))
        svc.flush()
        yield svc


class TestServiceParity:
    def test_set_metrics_promotes_stats_with_parity(self, service):
        registry = MetricsRegistry()
        service.set_metrics(registry)
        assert_parity(registry, "repro_serve", service.stats)

    def test_parity_survives_further_writes(self, service):
        registry = MetricsRegistry()
        service.set_metrics(registry)
        service.submit(InsertEdge(1, 7))
        service.flush()
        assert_parity(registry, "repro_serve", service.stats)


class TestEngineParity:
    def test_stream_stats_promote_with_parity(self, paper_graph):
        registry = MetricsRegistry()
        engine = repro.open(paper_graph)
        engine.set_metrics(registry)
        engine.insert_edge(0, 5)
        engine.query(0, 11)
        assert registry.get("repro_engine_updates").snapshot() \
            == engine.history.updates
        assert registry.get("repro_engine_epoch").snapshot() \
            == engine.epoch


class TestAuditParity:
    def test_sampler_and_auditor_promote_with_parity(
            self, tmp_path, paper_graph):
        registry = MetricsRegistry()
        engine = repro.open(paper_graph)
        sampler = AuditSampler(rate=1.0, capacity=64, seed=0)
        with SPCService(
            engine,
            config=ServeConfig(publish_every=1,
                               durability_dir=str(tmp_path)),
            overwrite=True,
        ) as service:
            service.set_answer_tap(sampler)
            with ShadowAuditor(sampler, str(tmp_path)) as auditor:
                sampler.set_metrics(registry)
                auditor.set_metrics(registry)
                service.submit(InsertEdge(0, 5))
                service.flush()
                service.query(0, 11)
                auditor.drain()
                assert_parity(registry, "repro_audit_sampler",
                              sampler.stats)
                assert_parity(registry, "repro_audit", auditor.stats)

    def test_snapshot_agrees_with_accessor_at_the_same_instant(self):
        # The whole point of callback gauges: exposition *is* the
        # accessor, so the snapshot taken now equals stats() taken now.
        registry = MetricsRegistry()
        sampler = AuditSampler(rate=1.0, capacity=64, seed=0)
        sampler.set_metrics(registry)
        sampler([((0, k), (1, 1)) for k in range(5)], seq=0,
                target="primary", epoch=0)
        snap = registry.snapshot()["gauges"]
        assert snap["repro_audit_sampler_seen"] == sampler.stats()["seen"]
        assert snap["repro_audit_sampler_sampled"] \
            == sampler.stats()["sampled"]
