"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    DatasetError,
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    GraphError,
    IndexCorruption,
    OrderingError,
    ReproError,
    SelfLoop,
    VertexNotFound,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [GraphError, IndexCorruption, OrderingError, WorkloadError, DatasetError],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    @pytest.mark.parametrize(
        "exc_type",
        [VertexNotFound, EdgeNotFound, DuplicateEdge, DuplicateVertex, SelfLoop],
    )
    def test_graph_errors(self, exc_type):
        assert issubclass(exc_type, GraphError)


class TestPayloads:
    def test_vertex_not_found_carries_vertex(self):
        e = VertexNotFound(42)
        assert e.vertex == 42
        assert "42" in str(e)

    def test_edge_errors_carry_edge(self):
        assert EdgeNotFound(1, 2).edge == (1, 2)
        assert DuplicateEdge(3, 4).edge == (3, 4)

    def test_self_loop_message(self):
        assert "self-loop" in str(SelfLoop(7))

    def test_catch_all_library_errors(self):
        # The single-except-clause contract from the module docstring.
        from repro.graph import Graph

        g = Graph()
        with pytest.raises(ReproError):
            g.neighbors(0)
        with pytest.raises(ReproError):
            g.add_vertex(0) or g.add_vertex(0)
