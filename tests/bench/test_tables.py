"""Unit tests for the result-table infrastructure."""

import json

import pytest

from repro.bench.tables import ExperimentResult, Table


class TestTable:
    def test_add_row_validates_width(self):
        t = Table("T", ["a", "b"])
        t.add_row(1, 2)
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_alignment(self):
        t = Table("Title", ["col", "value"])
        t.add_row("x", 1.5)
        t.add_row("longer", 0.001)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "col" in lines[2] and "value" in lines[2]
        assert len({len(l) for l in lines[2:4]}) <= 2  # aligned grid

    def test_float_formatting(self):
        t = Table("T", ["v"])
        t.add_row(1234.5)
        t.add_row(0.000123)
        t.add_row(0)
        out = t.render()
        assert "1,234" in out or "1,235" in out
        assert "0.000123" in out

    def test_column_access(self):
        t = Table("T", ["name", "v"])
        t.add_row("a", 1)
        t.add_row("b", 2)
        assert t.column("v") == [1, 2]
        with pytest.raises(ValueError):
            t.column("missing")

    def test_to_dict(self):
        t = Table("T", ["a"])
        t.add_row(3)
        assert t.to_dict() == {"title": "T", "columns": ["a"], "rows": [[3]]}


class TestExperimentResult:
    def _result(self):
        t = Table("Table X", ["a"])
        t.add_row(1)
        return ExperimentResult("exp", "desc", tables=[t], extra={"k": [1, 2]})

    def test_render_includes_header(self):
        out = self._result().render()
        assert out.startswith("== exp: desc ==")
        assert "Table X" in out

    def test_save_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        self._result().save(path)
        payload = json.loads(path.read_text())
        assert payload["name"] == "exp"
        assert payload["tables"][0]["rows"] == [[1]]
        assert payload["extra"] == {"k": [1, 2]}

    def test_table_lookup(self):
        r = self._result()
        assert r.table("Table X").rows == [[1]]
        with pytest.raises(KeyError):
            r.table("Nope")
