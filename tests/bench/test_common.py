"""Tests for the shared experiment machinery (dataset prep, workload runs)."""

from repro.bench.experiments import common
from repro.workloads import DeleteEdge, InsertEdge


class TestPrepare:
    def test_memoized(self):
        a = common.prepare("EUA")
        b = common.prepare("EUA")
        assert a is b

    def test_fresh_copies_are_independent(self):
        prep = common.prepare("EUA")
        g1, i1 = prep.fresh()
        g2, i2 = prep.fresh()
        u, v = next(iter(g1.edges()))
        g1.remove_edge(u, v)
        assert g2.has_edge(u, v)
        i1.label_set(u).clear()
        assert len(i2.label_set(u)) > 0

    def test_build_stats_recorded(self):
        prep = common.prepare("EUA")
        assert prep.build_seconds > 0
        assert prep.index_entries == prep.index.num_entries
        assert prep.index_bytes == 8 * prep.index_entries


class TestWorkloadRuns:
    def test_same_key_shares_run(self):
        a = common.run_insertions("EUA", 3, seed=42)
        b = common.run_insertions("EUA", 3, seed=42)
        assert a is b

    def test_different_keys_do_not_share(self):
        a = common.run_insertions("EUA", 3, seed=42)
        b = common.run_insertions("EUA", 4, seed=42)
        assert a is not b

    def test_deletion_run_records_sr_sizes(self):
        run = common.run_deletions("EUA", 3, seed=1)
        assert len(run.stats) == 3
        for s in run.stats:
            assert s.kind == "delete"
            assert s.elapsed > 0

    def test_run_mutates_private_copy_only(self):
        prep = common.prepare("EUA")
        edges_before = prep.graph.num_edges
        common.run_insertions("EUA", 2, seed=7)
        assert prep.graph.num_edges == edges_before


class TestApplyUpdates:
    def test_dispatch_and_timing(self):
        prep = common.prepare("EUA")
        graph, index = prep.fresh()
        u, v = sorted(graph.edges())[0]
        # Delete then reinsert the same edge via the dispatcher.
        stats = common.apply_updates(graph, index, [DeleteEdge(u, v), InsertEdge(u, v)])
        assert [s.kind for s in stats] == ["delete", "insert"]
        assert all(s.elapsed > 0 for s in stats)

    def test_unknown_update_type(self):
        import pytest

        prep = common.prepare("EUA")
        graph, index = prep.fresh()
        with pytest.raises(TypeError):
            common.apply_updates(graph, index, [object()])
