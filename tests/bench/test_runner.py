"""Tests for experiment dispatch and the CLI (on tiny synthetic configs)."""

import json

import pytest

from repro.bench.config import BenchConfig, get_profile
from repro.bench.runner import EXPERIMENTS, PAPER_SET, main, run_experiment


def tiny_config():
    """A minimal config so harness tests stay fast."""
    return BenchConfig(
        datasets=["EUA"],
        streaming_datasets=["EUA"],
        insertions=4,
        deletions=3,
        queries=30,
        stream_insertions=5,
        stream_deletions=2,
        skew_insertions=3,
        skew_deletions=2,
    )


class TestProfiles:
    def test_named_profiles(self):
        assert len(get_profile("quick").datasets) == 4
        assert len(get_profile("full").datasets) == 10
        with pytest.raises(ValueError):
            get_profile("enormous")

    def test_registry_covers_paper(self):
        assert set(PAPER_SET) <= set(EXPERIMENTS)
        assert len(PAPER_SET) == 8  # tables 3-5 + figures 7-11


class TestRunExperiment:
    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99", tiny_config())

    @pytest.mark.parametrize("name", PAPER_SET)
    def test_each_paper_experiment_runs(self, name):
        result = run_experiment(name, tiny_config())
        assert result.name == name
        assert result.tables
        for table in result.tables:
            assert table.rows
        # Renderable and JSON-serializable.
        assert result.render()
        json.dumps(result.to_dict(), default=str)

    def test_ablations_run(self):
        cfg = tiny_config()
        for name in ("ablation_ordering", "ablation_aff"):
            result = run_experiment(name, cfg)
            assert result.tables[0].rows


class TestCli:
    def test_cli_runs_and_saves(self, tmp_path, capsys, monkeypatch):
        # Use the tiny config by patching the profile resolver.
        import repro.bench.runner as runner_mod

        monkeypatch.setattr(runner_mod, "get_profile", lambda name: tiny_config())
        code = main(["table3", "--profile", "quick", "--save-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        saved = json.loads((tmp_path / "table3.json").read_text())
        assert saved["name"] == "table3"

    def test_cli_unknown_experiment(self, capsys, monkeypatch):
        import repro.bench.runner as runner_mod

        monkeypatch.setattr(runner_mod, "get_profile", lambda name: tiny_config())
        code = main(["tableXX"])
        assert code == 1
