"""Unit tests for timing utilities."""

import time

from repro.bench.timing import (
    Timer,
    distribution_summary,
    format_bytes,
    format_seconds,
    percentile,
    timed,
)


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_timed_records_into_dict(self):
        record = {}
        with timed(record, "step"):
            time.sleep(0.005)
        assert record["step"] >= 0.004


class TestPercentiles:
    def test_empty_and_single(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 25) == 7.0

    def test_median_of_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5
        assert percentile([0, 10], 75) == 7.5

    def test_distribution_summary_shape(self):
        s = distribution_summary([3, 1, 2, 4])
        assert s["count"] == 4
        assert s["min"] == 1 and s["max"] == 4
        assert s["p25"] <= s["median"] <= s["p75"]
        assert s["mean"] == 2.5

    def test_distribution_summary_empty(self):
        s = distribution_summary([])
        assert s["count"] == 0 and s["mean"] == 0.0


class TestFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0042).endswith("ms")
        assert format_seconds(0.0000042).endswith("us")

    def test_format_bytes_scales(self):
        assert format_bytes(12) == "12 B"
        assert format_bytes(4_200) == "4.2 KB"
        assert format_bytes(3_500_000) == "3.50 MB"
