"""The repro.bench.micro suite: registration, shape, and sanity of results."""

from repro.bench.config import BenchConfig, get_profile
from repro.bench.micro import run
from repro.bench.runner import EXPERIMENTS


def tiny_config():
    """A config small enough for the unit suite (seconds, not minutes)."""
    return BenchConfig(
        micro_isolated_sizes=(60, 120),
        micro_repeats=2,
        micro_query_graph=(80, 200),
        micro_query_sources=3,
        micro_query_targets=20,
        micro_update_graph=(50, 120),
        micro_update_insertions=5,
        micro_update_deletions=2,
    )


class TestRegistration:
    def test_registered_with_runner(self):
        assert EXPERIMENTS["micro"] is run

    def test_profiles_carry_micro_knobs(self):
        quick = get_profile("quick")
        full = get_profile("full")
        assert quick.micro_isolated_sizes[-1] < full.micro_isolated_sizes[-1]


class TestResultShape:
    def test_three_tables_and_extras(self):
        result = run(tiny_config())
        assert result.name == "micro"
        assert len(result.tables) == 3
        assert set(result.extra) == {
            "isolated_deletion", "batch_queries", "update_latency",
        }

    def test_isolated_series_matches_sizes(self):
        result = run(tiny_config())
        series = result.extra["isolated_deletion"]
        assert [row["n"] for row in series] == [60, 120]
        assert all(row["fast_path_us"] > 0 for row in series)
        assert all(row["legacy_sweep_us"] > 0 for row in series)

    def test_batch_query_agreement_is_enforced(self):
        # run() asserts batched == per-pair answers internally; reaching
        # here means the shared-scan path agreed with the merge path.
        result = run(tiny_config())
        assert result.extra["batch_queries"]["pairs"] == 3 * 20

    def test_update_latency_counts(self):
        result = run(tiny_config())
        lat = result.extra["update_latency"]
        assert lat["insert"]["count"] == 5
        assert lat["delete"]["count"] == 2

    def test_result_is_json_serializable(self, tmp_path):
        result = run(tiny_config())
        path = tmp_path / "micro.json"
        result.save(str(path))
        assert path.stat().st_size > 0
