"""The opt-in perf-trajectory gate: repro-bench --compare/--tolerance."""

import json

import pytest

from repro.bench.compare import METRIC_EXTRACTORS, compare_result
from repro.bench.tables import ExperimentResult


def micro_result(fast_us=10.0, batched_s=0.01, mean_s=0.001):
    result = ExperimentResult(name="micro", description="test")
    result.extra = {
        "isolated_deletion": [{"n": 100, "fast_path_us": fast_us}],
        "batch_queries": {"batched_seconds": batched_s},
        "update_latency": {"insert": {"mean": mean_s}},
    }
    return result


def write_baseline(tmp_path, result):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(result.to_dict()))
    return str(path)


class TestCompare:
    def test_identical_run_passes(self, tmp_path):
        baseline = write_baseline(tmp_path, micro_result())
        regressions, lines = compare_result(micro_result(), baseline, 0.5)
        assert regressions == []
        assert any("ok" in line for line in lines)

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        baseline = write_baseline(tmp_path, micro_result(fast_us=10.0))
        current = micro_result(fast_us=20.0)  # 100% slower, 50% allowed
        regressions, _ = compare_result(current, baseline, 0.5)
        assert len(regressions) == 1
        assert regressions[0]["metric"].startswith("isolated_deletion")
        assert regressions[0]["change"] == pytest.approx(1.0)

    def test_regression_within_tolerance_passes(self, tmp_path):
        baseline = write_baseline(tmp_path, micro_result(fast_us=10.0))
        current = micro_result(fast_us=14.0)  # 40% slower, 50% allowed
        regressions, _ = compare_result(current, baseline, 0.5)
        assert regressions == []

    def test_improvement_never_fails(self, tmp_path):
        baseline = write_baseline(tmp_path, micro_result(fast_us=10.0))
        current = micro_result(fast_us=1.0)
        regressions, lines = compare_result(current, baseline, 0.5)
        assert regressions == []
        assert any("improved" in line for line in lines)

    def test_name_mismatch_skips(self, tmp_path):
        baseline = write_baseline(tmp_path, micro_result())
        other = ExperimentResult(name="fig7", description="test")
        regressions, lines = compare_result(other, baseline, 0.5)
        assert regressions == []
        assert any("skipping" in line for line in lines)

    def test_untracked_experiment_skips(self, tmp_path):
        result = ExperimentResult(name="fig7", description="test")
        path = tmp_path / "fig7.json"
        path.write_text(json.dumps(result.to_dict()))
        regressions, lines = compare_result(result, str(path), 0.5)
        assert regressions == []
        assert any("no tracked metrics" in line for line in lines)

    def test_serve_extractor_directions(self):
        extractor = METRIC_EXTRACTORS["serve"]
        metrics = extractor({
            "core": {
                "read_qps": 1000,
                "read_latency_ms": {"p99": 0.5},
            },
        })
        assert metrics["core.read_qps"] == (1000, "higher")
        assert metrics["core.read_latency_p99_ms"] == (0.5, "lower")

    def test_cluster_extractor_directions(self):
        extractor = METRIC_EXTRACTORS["cluster"]
        metrics = extractor({
            "core": {
                "read_qps": 2000,
                "read_latency_ms": {"p99": 0.4},
                "fault_injection": {"catch_up_ms": 12.5, "converged": True},
            },
            "sd": {
                "read_qps": 1500,
                "read_latency_ms": {"p99": 0.3},
                "fault_injection": {},  # fault injection disabled
            },
        })
        assert metrics["core.read_qps"] == (2000, "higher")
        assert metrics["core.read_latency_p99_ms"] == (0.4, "lower")
        assert metrics["core.catch_up_ms"] == (12.5, "lower")
        assert "sd.catch_up_ms" not in metrics

    def test_higher_is_better_regression(self, tmp_path):
        baseline = ExperimentResult(name="serve", description="test")
        baseline.extra = {
            "core": {"read_qps": 1000, "read_latency_ms": {"p99": 0.5}},
        }
        current = ExperimentResult(name="serve", description="test")
        current.extra = {
            "core": {"read_qps": 400, "read_latency_ms": {"p99": 0.5}},
        }
        path = write_baseline(tmp_path, baseline)
        regressions, _ = compare_result(current, path, 0.5)
        assert [r["metric"] for r in regressions] == ["core.read_qps"]


class TestCLI:
    def test_compare_flag_fails_on_regression(self, tmp_path, monkeypatch):
        from repro.bench import runner

        baseline = write_baseline(tmp_path, micro_result(fast_us=1.0))

        def fake_run(config):
            return micro_result(fast_us=100.0)

        monkeypatch.setitem(runner.EXPERIMENTS, "micro", fake_run)
        code = runner.main(
            ["micro", "--profile", "quick", "--compare", baseline]
        )
        assert code == 1

    def test_compare_flag_passes_within_tolerance(self, tmp_path, monkeypatch):
        from repro.bench import runner

        baseline = write_baseline(tmp_path, micro_result())
        monkeypatch.setitem(
            runner.EXPERIMENTS, "micro", lambda config: micro_result()
        )
        code = runner.main(
            ["micro", "--profile", "quick", "--compare", baseline,
             "--tolerance", "0.5"]
        )
        assert code == 0

    def test_serve_experiment_registered(self):
        from repro.bench.runner import EXPERIMENTS

        assert "serve" in EXPERIMENTS

    def test_cluster_experiment_registered(self):
        from repro.bench.runner import EXPERIMENTS

        assert "cluster" in EXPERIMENTS

    def test_shard_experiment_registered(self):
        from repro.bench.runner import EXPERIMENTS

        assert "shard" in EXPERIMENTS

    def test_shard_extractor_tracks_qps_latency_and_memory(self):
        extra = {
            "runs": {
                "core": {
                    "read_qps": 5000,
                    "read_latency_ms": {"p50": 0.1, "p99": 0.4},
                    "memory": {
                        "peak_ratio": {"shard-0": 0.26, "shard-1": 0.31},
                    },
                },
            },
        }
        metrics = METRIC_EXTRACTORS["shard"](extra)
        assert metrics["core.read_qps"] == (5000, "higher")
        assert metrics["core.read_latency_p99_ms"] == (0.4, "lower")
        assert metrics["core.max_peak_ratio"] == (0.31, "lower")
