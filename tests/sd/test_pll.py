"""Unit tests for the SD-Index (distance-only PLL)."""

import random

from repro.graph import erdos_renyi, path_graph
from repro.sd import build_sd_index
from repro.traversal import bfs_distance_sssp

INF = float("inf")


class TestSDConstruction:
    def test_distances_exact(self):
        g = erdos_renyi(40, 90, seed=1)
        index = build_sd_index(g)
        for s in range(0, 40, 5):
            truth = bfs_distance_sssp(g, s)
            for t in range(40):
                expected = truth.get(t, INF)
                assert index.distance(s, t) == expected

    def test_disconnected(self):
        from repro.graph import Graph

        g = Graph.from_edges([(0, 1)], vertices=[2])
        index = build_sd_index(g)
        assert index.distance(0, 2) == INF

    def test_paper_sd_vs_spc_hub_sets(self, paper_graph, paper_order):
        # §2.3: "(v0, 2) belongs to L(v5) in SD-Index, but v2 is no longer a
        # hub of v8" — the SD index drops the non-canonical labels.
        index = build_sd_index(paper_graph, order=paper_order)
        assert ("v0-check", dict(index.labels(5)).get(0)) == ("v0-check", 2)
        assert 2 not in dict(index.labels(8))

    def test_sd_index_smaller_than_spc(self, paper_graph, paper_order, paper_index):
        sd = build_sd_index(paper_graph, order=paper_order)
        assert sd.num_entries <= paper_index.num_entries

    def test_labels_sorted(self):
        g = erdos_renyi(30, 60, seed=2)
        index = build_sd_index(g)
        for v in g.vertices():
            hubs, _ = index.label_arrays(v)
            assert hubs == sorted(hubs)


class TestSDIncremental:
    def test_distances_exact_after_insertions(self):
        from repro.sd import inc_sd

        rng = random.Random(5)
        g = erdos_renyi(25, 45, seed=5)
        index = build_sd_index(g)
        done = 0
        while done < 15:
            u, v = rng.randrange(25), rng.randrange(25)
            if u == v or g.has_edge(u, v):
                continue
            inc_sd(g, index, u, v)
            done += 1
            for s in range(0, 25, 4):
                truth = bfs_distance_sssp(g, s)
                for t in range(0, 25, 3):
                    assert index.distance(s, t) == truth.get(t, INF)

    def test_component_merge(self):
        from repro.graph import Graph
        from repro.sd import inc_sd

        g = Graph.from_edges([(0, 1), (2, 3)])
        index = build_sd_index(g)
        inc_sd(g, index, 1, 2)
        assert index.distance(0, 3) == 3
