"""Failure injection: SD-style pruning must corrupt SPC counts (§2.3).

The paper argues the WWW'14 incremental algorithm "fails to detect the
presence of new shortest paths with the same length as the pre-existing
ones".  We verify the failure is real (the broken variant corrupts counts on
a crafted graph and the verifier catches it) and that the correct IncSPC
handles the same update.
"""

import pytest

from repro.core import build_spc_index, inc_spc
from repro.exceptions import IndexCorruption
from repro.graph import Graph, erdos_renyi
from repro.sd import inc_spc_sd_pruning
from repro.verify import verify_espc


def equal_length_scenario():
    """A graph where inserting (3, 2) adds a second shortest path 0-2.

    Existing: 0-1-2; new: 0-3 then (3, 2) closes a tie.  The tie is exactly
    what non-strict pruning throws away.
    """
    return Graph.from_edges([(0, 1), (1, 2), (0, 3)])


class TestSDPruningFailure:
    def test_broken_variant_misses_tied_paths(self):
        g = equal_length_scenario()
        index = build_spc_index(g)
        inc_spc_sd_pruning(g, index, 3, 2)
        # Distance is right, count is wrong: the hallmark failure.
        d, c = index.query(0, 2)
        assert d == 2
        assert c == 1  # true answer is 2
        with pytest.raises(IndexCorruption):
            verify_espc(g, index)

    def test_correct_incspc_handles_same_update(self):
        g = equal_length_scenario()
        index = build_spc_index(g)
        inc_spc(g, index, 3, 2)
        assert index.query(0, 2) == (2, 2)
        assert verify_espc(g, index)

    def test_corruption_rate_on_random_graphs(self):
        # Across random insertions, the broken rule must fail at least
        # sometimes while the correct rule never does.
        broken_failures = 0
        trials = 0
        for seed in range(12):
            g = erdos_renyi(18, 30, seed=seed)
            gb = g.copy()
            index_ok = build_spc_index(g)
            index_bad = build_spc_index(gb)
            edge = _absent_edge(g, seed)
            if edge is None:
                continue
            trials += 1
            inc_spc(g, index_ok, *edge)
            inc_spc_sd_pruning(gb, index_bad, *edge)
            assert verify_espc(g, index_ok)
            try:
                verify_espc(gb, index_bad)
            except IndexCorruption:
                broken_failures += 1
        assert trials >= 8
        assert broken_failures >= 1


def _absent_edge(g, seed):
    import random

    rng = random.Random(seed)
    vs = sorted(g.vertices())
    for _ in range(200):
        u, v = rng.choice(vs), rng.choice(vs)
        if u != v and not g.has_edge(u, v):
            return u, v
    return None
