"""Unit tests for the dataset registry."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    SMALL_DATASET_NAMES,
    STREAMING_DATASET_NAMES,
    dataset_info,
    dataset_statistics,
    load_dataset,
)
from repro.exceptions import DatasetError
from repro.graph import is_connected


class TestRegistry:
    def test_ten_datasets_in_table3_order(self):
        assert DATASET_NAMES == [
            "EUA", "NTD", "STA", "WCO", "GOO", "BKS", "SKI", "DBP", "WAR", "IND",
        ]
        assert set(SMALL_DATASET_NAMES) <= set(DATASET_NAMES)
        assert STREAMING_DATASET_NAMES == ["BKS", "WAR", "IND"]

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            dataset_info("NOPE")
        with pytest.raises(DatasetError):
            load_dataset("NOPE")

    def test_info_fields(self):
        info = dataset_info("EUA")
        assert info["paper_name"] == "email-EuAll"
        assert info["paper_n"] == 265214
        assert info["paper_m"] == 418956

    @pytest.mark.parametrize("name", SMALL_DATASET_NAMES)
    def test_small_datasets_load_connected(self, name):
        g = load_dataset(name)
        assert g.num_vertices > 100
        assert is_connected(g)

    def test_load_returns_copy_by_default(self):
        a = load_dataset("EUA")
        b = load_dataset("EUA")
        u, v = next(iter(a.edges()))
        a.remove_edge(u, v)
        assert b.has_edge(u, v)

    def test_load_deterministic(self):
        a = load_dataset("NTD")
        b = load_dataset("NTD")
        assert sorted(a.edges()) == sorted(b.edges())

    def test_statistics_row(self):
        row = dataset_statistics("WCO")
        assert row["key"] == "WCO"
        assert row["n"] > 0 and row["m"] > 0
        assert row["paper_n"] == 118100

    def test_relative_size_ordering_preserved(self):
        # IND must stay the largest analogue, as in Table 3.
        sizes = {name: load_dataset(name, copy=False).num_edges
                 for name in SMALL_DATASET_NAMES + ["IND"]}
        assert sizes["IND"] == max(sizes.values())
