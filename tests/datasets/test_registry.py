"""Unit tests for the dataset registry."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    SMALL_DATASET_NAMES,
    STREAMING_DATASET_NAMES,
    TEMPORAL_DATASET_NAMES,
    dataset_info,
    dataset_statistics,
    load_dataset,
    load_temporal_dataset,
)
from repro.exceptions import DatasetError
from repro.graph import is_connected


class TestRegistry:
    def test_ten_datasets_in_table3_order(self):
        assert DATASET_NAMES == [
            "EUA", "NTD", "STA", "WCO", "GOO", "BKS", "SKI", "DBP", "WAR", "IND",
        ]
        assert set(SMALL_DATASET_NAMES) <= set(DATASET_NAMES)
        assert STREAMING_DATASET_NAMES == ["BKS", "WAR", "IND"]

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            dataset_info("NOPE")
        with pytest.raises(DatasetError):
            load_dataset("NOPE")

    def test_info_fields(self):
        info = dataset_info("EUA")
        assert info["paper_name"] == "email-EuAll"
        assert info["paper_n"] == 265214
        assert info["paper_m"] == 418956

    @pytest.mark.parametrize("name", SMALL_DATASET_NAMES)
    def test_small_datasets_load_connected(self, name):
        g = load_dataset(name)
        assert g.num_vertices > 100
        assert is_connected(g)

    def test_load_returns_copy_by_default(self):
        a = load_dataset("EUA")
        b = load_dataset("EUA")
        u, v = next(iter(a.edges()))
        a.remove_edge(u, v)
        assert b.has_edge(u, v)

    def test_load_deterministic(self):
        a = load_dataset("NTD")
        b = load_dataset("NTD")
        assert sorted(a.edges()) == sorted(b.edges())

    def test_statistics_row(self):
        row = dataset_statistics("WCO")
        assert row["key"] == "WCO"
        assert row["n"] > 0 and row["m"] > 0
        assert row["paper_n"] == 118100

    def test_relative_size_ordering_preserved(self):
        # IND must stay the largest analogue, as in Table 3.
        sizes = {name: load_dataset(name, copy=False).num_edges
                 for name in SMALL_DATASET_NAMES + ["IND"]}
        assert sizes["IND"] == max(sizes.values())

    def test_kwarg_variants_get_distinct_cache_entries(self):
        base = load_dataset("EUA", copy=False)
        small = load_dataset("EUA", copy=False, n=150)
        assert small is not base
        assert small.num_vertices != base.num_vertices
        # The default-parameter entry must be untouched by the variant.
        again = load_dataset("EUA", copy=False)
        assert again is base
        # And the variant itself is cached under its own key.
        assert load_dataset("EUA", copy=False, n=150) is small


class TestTemporalRegistry:
    def test_temporal_names(self):
        assert TEMPORAL_DATASET_NAMES == ["ENR", "DIG", "WBO"]
        assert not set(TEMPORAL_DATASET_NAMES) & set(DATASET_NAMES)

    def test_info_marks_temporal(self):
        info = dataset_info("ENR")
        assert info["temporal"] is True
        assert info["paper_name"] == "enron-email"
        assert dataset_info("EUA")["temporal"] is False

    @pytest.mark.parametrize("name", TEMPORAL_DATASET_NAMES)
    def test_temporal_corpora_load_and_cache(self, name):
        a = load_temporal_dataset(name)
        b = load_temporal_dataset(name)
        assert a is b  # immutable logs are shared, not copied
        assert a.name == name
        assert len(a) > 500
        assert a.span() > 0

    def test_temporal_kwarg_variants(self):
        full = load_temporal_dataset("ENR")
        trimmed = load_temporal_dataset("ENR", events=400)
        assert trimmed is not full
        assert len(trimmed) < len(full)
        assert load_temporal_dataset("ENR", events=400) is trimmed

    def test_temporal_statistics_row(self):
        row = dataset_statistics("WBO")
        assert row["key"] == "WBO"
        assert row["family"] == "churn_storm"
        assert row["events"] > 0
        assert row["span"] > 0
        assert 0.0 <= row["churn_rate"] <= 1.0
        assert row["events_per_unit_time"] > 0

    def test_static_loader_refuses_temporal_names(self):
        with pytest.raises(DatasetError, match="temporal"):
            load_dataset("ENR")

    def test_temporal_loader_refuses_static_and_unknown_names(self):
        with pytest.raises(DatasetError):
            load_temporal_dataset("EUA")
        with pytest.raises(DatasetError):
            load_temporal_dataset("NOPE")
