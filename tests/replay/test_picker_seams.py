"""The shared source-picker seam across the serve/cluster/audit loadgens.

Satellite contract: the legacy uniform path (``source_picker=None``) is
byte-for-byte the pre-seam behavior, and every loadgen accepts the named
pickers from :mod:`repro.replay.traffic` without changing its strict
consistency judging.
"""

import pytest

from repro.audit import run_audit_loadgen
from repro.cluster.loadgen import run_cluster_loadgen
from repro.exceptions import DatasetError
from repro.serve.loadgen import make_pair_picker, run_loadgen

QUICK_SERVE = dict(backend="core", readers=2, duration=0.4, n=120, m=360,
                   churn=12, seed=0)
QUICK_CLUSTER = dict(backend="core", replicas=2, readers=2, duration=0.5,
                     n=120, m=360, churn=12, inject_fault=False, seed=0)
QUICK_AUDIT = dict(backend="core", replicas=2, readers=2, duration=0.5,
                   n=100, m=300, churn=12, sample_rate=0.5, corrupt=None,
                   kill=False, seed=0)


class TestMakePairPicker:
    def test_none_means_legacy_uniform(self):
        assert make_pair_picker(None, [1, 2, 3], seed=0) is None

    def test_named_pickers_resolve(self):
        verts = list(range(20))
        for name in ("uniform", "zipf", "hotset"):
            picker = make_pair_picker(name, verts, seed=1)
            s, t = picker.pick_pair()
            assert s != t and s in verts and t in verts

    def test_kwargs_forwarded(self):
        picker = make_pair_picker("hotset", list(range(20)), seed=1,
                                  picker_kwargs={"hot_size": 3})
        assert len(picker._hot) == 3

    def test_unknown_name_refused(self):
        with pytest.raises(DatasetError, match="unknown source picker"):
            make_pair_picker("lru", list(range(10)), seed=0)


class TestServeSeam:
    @pytest.mark.parametrize("picker", ["zipf", "hotset"])
    def test_skewed_pickers_pass_strict_run(self, picker):
        report = run_loadgen(source_picker=picker, **QUICK_SERVE)
        assert report["reads"] > 0
        assert report["consistency_problems"] == []

    def test_picker_kwargs_reach_the_picker(self):
        report = run_loadgen(source_picker="zipf",
                             picker_kwargs={"alpha": 1.5}, **QUICK_SERVE)
        assert report["consistency_problems"] == []


class TestClusterSeam:
    def test_zipf_picker_passes_strict_run(self):
        report = run_cluster_loadgen(source_picker="zipf", **QUICK_CLUSTER)
        assert report["reads"] > 0
        assert report["consistency_problems"] == []


class TestAuditSeam:
    def test_hotset_picker_passes_audited_run(self):
        report = run_audit_loadgen(source_picker="hotset", **QUICK_AUDIT)
        assert report["reads"] > 0
        assert report["auditor"]["audited"] > 0
        assert report["severities_seen"] == []
