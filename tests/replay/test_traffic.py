"""Traffic models: seeded determinism, skew shapes, arrival schedules."""

import pytest

from repro.exceptions import DatasetError
from repro.replay import (
    BurstyArrivals,
    DiurnalArrivals,
    HotSetPicker,
    PoissonArrivals,
    UniformPicker,
    ZipfPicker,
    make_arrival_process,
    make_source_picker,
)

VERTICES = list(range(60))


def _source_counts(picker, n=600):
    counts = {}
    for _ in range(n):
        s, t = picker.pick_pair()
        assert s != t
        counts[s] = counts.get(s, 0) + 1
    return counts


class TestSourcePickers:
    @pytest.mark.parametrize("name", ["uniform", "zipf", "hotset"])
    def test_deterministic_per_seed(self, name):
        a = make_source_picker(name, VERTICES, seed=4)
        b = make_source_picker(name, VERTICES, seed=4)
        assert [a.pick_pair() for _ in range(100)] \
            == [b.pick_pair() for _ in range(100)]

    def test_zipf_is_skewed_relative_to_uniform(self):
        uni = max(_source_counts(UniformPicker(VERTICES, seed=1)).values())
        zipf = max(_source_counts(ZipfPicker(VERTICES, seed=1)).values())
        assert zipf > 2 * uni

    def test_hotset_concentrates_then_rotates(self):
        p = HotSetPicker(VERTICES, seed=1, hot_size=4, hot_weight=0.9,
                         rotate_every=50)
        first_hot = set(p._hot)
        _source_counts(p, n=300)
        assert set(p._hot) != first_hot  # rotated at least once

    def test_needs_two_vertices(self):
        with pytest.raises(DatasetError, match=">= 2"):
            UniformPicker([7])

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown source picker"):
            make_source_picker("pareto", VERTICES)

    def test_validation(self):
        with pytest.raises(DatasetError, match="alpha"):
            ZipfPicker(VERTICES, alpha=0)
        with pytest.raises(DatasetError, match="hot_weight"):
            HotSetPicker(VERTICES, hot_weight=1.5)


class TestArrivalProcesses:
    @pytest.mark.parametrize("name", ["poisson", "bursty", "diurnal"])
    def test_deterministic_sorted_in_window(self, name):
        a = make_arrival_process(name, rate=4.0, seed=2)
        sched = a.schedule(10.0, 60.0)
        assert sched == make_arrival_process(name, rate=4.0,
                                             seed=2).schedule(10.0, 60.0)
        assert sched == sorted(sched)
        assert all(10.0 <= t < 60.0 for t in sched)
        # Mean-rate sanity: within a loose factor of rate * span.
        assert 50 <= len(sched) <= 800

    def test_bursty_is_clumpier_than_poisson(self):
        span = (0.0, 200.0)
        poisson = PoissonArrivals(rate=3.0, seed=5).schedule(*span)
        bursty = BurstyArrivals(rate=3.0, seed=5, burst_factor=10.0,
                                mean_quiet=10.0, mean_burst=3.0).schedule(*span)

        def clumpiness(sched):
            gaps = [b - a for a, b in zip(sched, sched[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / (mean * mean)  # CV^2; 1 for Poisson, > 1 bursty

        assert clumpiness(bursty) > clumpiness(poisson)

    def test_diurnal_rate_varies_across_window(self):
        sched = DiurnalArrivals(rate=6.0, seed=3, amplitude=0.9,
                                cycles=1.0).schedule(0.0, 100.0)
        # One sine cycle: the first half (rising rate) must out-arrive
        # the second half (falling rate) noticeably.
        first = sum(1 for t in sched if t < 50.0)
        second = len(sched) - first
        assert first > 1.2 * second

    def test_empty_window(self):
        assert DiurnalArrivals(rate=5.0).schedule(10.0, 10.0) == []

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown arrival process"):
            make_arrival_process("hawkes", rate=1.0)

    def test_validation(self):
        with pytest.raises(DatasetError, match="rate"):
            PoissonArrivals(rate=0)
        with pytest.raises(DatasetError, match="burst_factor"):
            BurstyArrivals(rate=1.0, burst_factor=1.0)
        with pytest.raises(DatasetError, match="amplitude"):
            DiurnalArrivals(rate=1.0, amplitude=0.0)
