"""The bundled temporal corpora generators: determinism and shape."""

import pytest

from repro.exceptions import DatasetError
from repro.graph import is_connected
from repro.replay import (
    TEMPORAL_FAMILIES,
    churn_storm,
    temporal_cascade,
    temporal_contact,
)

GENERATORS = [temporal_contact, temporal_cascade, churn_storm]


class TestGenerators:
    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic_per_seed(self, gen):
        a = gen(n=40, events=200, span=50.0, seed=9)
        b = gen(n=40, events=200, span=50.0, seed=9)
        c = gen(n=40, events=200, span=50.0, seed=10)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_warmup_cut_is_connected_and_complete(self, gen):
        # The generators' contract: at the end of the bootstrap phase the
        # graph is one connected component naming every vertex.
        log = gen(n=40, events=200, span=50.0, warm_fraction=0.25, seed=1)
        g = log.cut(50.0 * 0.25)
        assert g.num_vertices == 40
        assert is_connected(g)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_log_is_applicable(self, gen):
        # from_raw guarantees it, but the generators should not rely on
        # normalization throwing most of their budget away.
        log = gen(n=40, events=300, span=50.0, seed=2)
        assert len(log) >= 150
        assert log.t1 <= 50.0

    def test_contact_is_churny(self):
        s = temporal_contact(n=40, events=400, span=60.0, seed=0).stats()
        assert 0.2 <= s["churn_rate"] <= 0.5

    def test_cascade_is_insert_dominated(self):
        s = temporal_cascade(n=40, events=400, span=60.0, seed=0).stats()
        assert s["churn_rate"] < 0.2

    def test_storm_is_delete_heavy(self):
        s = churn_storm(n=40, events=400, span=60.0, seed=0).stats()
        assert s["churn_rate"] >= 0.25

    def test_families_registry(self):
        assert set(TEMPORAL_FAMILIES) == {
            "temporal_contact", "temporal_cascade", "churn_storm",
        }

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_parameter_validation(self, gen):
        with pytest.raises(DatasetError, match="n >= 4"):
            gen(n=2)
        with pytest.raises(DatasetError, match="at least n"):
            gen(n=40, events=10)
        with pytest.raises(DatasetError, match="span"):
            gen(span=0.0)
