"""ReplayScenario specs, the named library, and ReplayPlan determinism."""

import pytest

from repro.exceptions import DatasetError
from repro.replay import (
    QUICK_SCENARIOS,
    SCENARIOS,
    FaultSpec,
    ReplayPlan,
    ReplayScenario,
    get_scenario,
    scenario_names,
    temporal_contact,
)


class TestScenarioSpec:
    def test_library_names(self):
        assert scenario_names() == [
            "diurnal", "heavy-tail-sources", "burst-arrival", "churn-window",
        ]
        assert set(QUICK_SCENARIOS) <= set(SCENARIOS)

    def test_library_covers_fleets_and_corpora(self):
        fleets = {s.fleet for s in SCENARIOS.values()}
        corpora = {s.corpus for s in SCENARIOS.values()}
        assert "shard" in fleets and "service" in fleets
        assert len(corpora) >= 2

    def test_get_scenario_unknown(self):
        with pytest.raises(DatasetError, match="unknown replay scenario"):
            get_scenario("flashcrowd")

    def test_fleet_validation(self):
        with pytest.raises(DatasetError, match="unknown fleet"):
            ReplayScenario(name="x", corpus="ENR", fleet="mesh")

    def test_warmup_validation(self):
        with pytest.raises(DatasetError, match="warmup"):
            ReplayScenario(name="x", corpus="ENR", warmup=1.0)

    def test_faults_need_shard_fleet(self):
        with pytest.raises(DatasetError, match="shard"):
            ReplayScenario(
                name="x", corpus="ENR", fleet="service",
                faults=(FaultSpec("kill_shard", at=0.5),),
            )

    def test_fault_time_validation(self):
        with pytest.raises(DatasetError, match="fraction"):
            FaultSpec("kill_shard", at=1.5)

    def test_replace_and_describe(self):
        s = get_scenario("diurnal").replace(duration=9.0)
        assert s.duration == 9.0
        assert get_scenario("diurnal").duration != 9.0
        d = get_scenario("churn-window").describe()
        assert d["fleet"] == "shard"
        assert d["faults"][0]["action"] == "kill_shard"


class TestReplayPlan:
    def _plan(self, seed=0):
        log = temporal_contact(n=30, events=200, span=50.0, seed=5)
        scenario = ReplayScenario(
            name="t", corpus="ENR", warmup=0.3, query_rate=6.0,
            duration=1.0, batch_size=5,
        )
        return ReplayPlan(scenario, log, seed=seed)

    def test_deterministic(self):
        a, b = self._plan(), self._plan()
        assert a.fingerprint() == b.fingerprint()
        assert a.describe() == b.describe()
        assert self._plan(seed=1).fingerprint() != a.fingerprint()

    def test_batches_cover_the_tail_in_order(self):
        plan = self._plan()
        total = sum(len(updates) for _, updates in plan.batches)
        assert total == plan.events_to_replay > 0
        stamps = [ts for ts, _ in plan.batches]
        assert stamps == sorted(stamps)
        assert all(len(u) <= 5 for _, u in plan.batches)

    def test_queries_inside_live_window(self):
        plan = self._plan()
        assert plan.queries
        assert all(plan.warm_t <= ts < plan.t_end for ts, _, _ in plan.queries)

    def test_reader_slices_partition_the_schedule(self):
        plan = self._plan()
        slices = plan.reader_slices(3)
        assert sum(len(s) for s in slices) == len(plan.queries)
        # Round-robin: every slice spans the window, not a block of it.
        for sl in slices:
            assert sl[0][0] < plan.warm_t + (plan.t_end - plan.warm_t) / 2

    def test_wall_offset_maps_span_to_duration(self):
        plan = self._plan()
        assert plan.wall_offset(plan.warm_t) == 0.0
        assert plan.wall_offset(plan.t_end) == pytest.approx(1.0)

    def test_empty_tail_refused(self):
        # A zero-span log (every event on one timestamp) leaves nothing
        # after the warmup cut, whatever the warmup fraction.
        from repro.replay import INSERT, TemporalEventLog, make_event

        log = TemporalEventLog.from_raw(
            [make_event(5.0, INSERT, i, i + 1) for i in range(4)]
        )
        scenario = ReplayScenario(name="t", corpus="ENR", warmup=0.5)
        with pytest.raises(DatasetError, match="warmup"):
            ReplayPlan(scenario, log)
