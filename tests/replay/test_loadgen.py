"""The replay engine end to end: every fleet topology, strict contract."""

import pytest

from repro.exceptions import ServeError
from repro.replay import run_replay_scenario
from repro.replay.scenario import FaultSpec, get_scenario

# Small corpora + short wall windows keep each run in the ~1s range.
TRIM = {"events": 350}


class TestRunReplayScenario:
    def test_service_scenario(self):
        report = run_replay_scenario(
            "diurnal", seed=0, duration=0.6, corpus_kwargs=TRIM
        )
        det = report["deterministic"]
        assert report["events_submitted"] == det["events_to_replay"]
        assert report["queries_issued"] == det["queries_planned"]
        assert report["divergences"] == 0
        assert report["refusals"] == 0
        assert report["auditor"]["audited"] > 0

    def test_same_seed_is_deterministic(self):
        a = run_replay_scenario("diurnal", seed=3, duration=0.5,
                                corpus_kwargs=TRIM)
        b = run_replay_scenario("diurnal", seed=3, duration=0.5,
                                corpus_kwargs=TRIM)
        assert a["deterministic"] == b["deterministic"]
        c = run_replay_scenario("diurnal", seed=4, duration=0.5,
                                corpus_kwargs=TRIM)
        assert c["deterministic"]["fingerprint"] \
            != a["deterministic"]["fingerprint"]

    def test_cluster_scenario(self):
        report = run_replay_scenario(
            "heavy-tail-sources", seed=0, duration=0.8, corpus_kwargs=TRIM
        )
        assert report["scenario"]["fleet"] == "cluster"
        assert report["divergences"] == 0
        assert report["queries_answered"] == report["queries_issued"]

    def test_shard_scenario_with_faults(self):
        report = run_replay_scenario(
            "churn-window", seed=0, duration=1.4, corpus_kwargs=TRIM
        )
        assert report["scenario"]["fleet"] == "shard"
        assert report["divergences"] == 0
        # The kill window must have been observed as refusals, and the
        # fleet must have recovered after the restart.
        assert report["refusals"] > 0
        assert report["recovered"] is True
        actions = [e["action"] for e in report["fault_injection"]]
        assert actions == ["kill_shard", "restart_shard"]

    def test_accepts_scenario_object_with_overrides(self):
        scenario = get_scenario("diurnal").replace(
            name="diurnal-tweaked", query_rate=5.0, readers=1
        )
        report = run_replay_scenario(scenario, seed=0, duration=0.5,
                                     corpus_kwargs=TRIM)
        assert report["scenario"]["name"] == "diurnal-tweaked"

    def test_rejects_non_scenario(self):
        with pytest.raises(ServeError, match="scenario"):
            run_replay_scenario(42)

    def test_unexplained_fault_action_fails(self):
        scenario = get_scenario("churn-window").replace(
            faults=(FaultSpec("defragment", at=0.5),)
        )
        with pytest.raises(Exception, match="defragment|problem"):
            run_replay_scenario(scenario, seed=0, duration=0.8,
                                corpus_kwargs=TRIM)
