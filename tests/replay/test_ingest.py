"""Temporal edge-list ingestion: formats, tolerance, typed refusals."""

import gzip
import io

import pytest

from repro.exceptions import DatasetError
from repro.replay import (
    DELETE,
    INSERT,
    SET_WEIGHT,
    parse_temporal_edge_list,
    temporal_contact,
    write_temporal_edge_list,
)


class TestParsing:
    def test_three_column_inserts(self):
        log = parse_temporal_edge_list(["0 1 10", "1 2 20"])
        assert [e.kind for e in log] == [INSERT, INSERT]
        assert [e.ts for e in log] == [10.0, 20.0]

    def test_four_column_sign_convention(self):
        log = parse_temporal_edge_list(["0 1 1 10", "0 1 -1 20"])
        assert [e.kind for e in log] == [INSERT, DELETE]

    def test_comments_and_blank_lines_skipped(self):
        log = parse_temporal_edge_list([
            "# SNAP-style header",
            "% konect-style header",
            "",
            "   ",
            "0 1 10",
        ])
        assert len(log) == 1

    def test_out_of_order_timestamps_sorted(self):
        log = parse_temporal_edge_list(["2 3 50", "0 1 10"])
        assert [e.ts for e in log] == [10.0, 50.0]

    def test_duplicate_and_dangling_tolerated(self):
        log = parse_temporal_edge_list([
            "0 1 10",
            "1 0 20",      # duplicate (reversed orientation)
            "2 3 -1 30",   # delete-before-insert
        ])
        assert len(log) == 1
        assert log.dropped == {"duplicate_insert": 1, "dangling_delete": 1}

    def test_weighted_keeps_magnitudes(self):
        log = parse_temporal_edge_list(
            ["0 1 2.5 10", "0 1 4.0 20"], weighted=True
        )
        assert log[0].weight == 2.5
        assert log[1].kind == SET_WEIGHT and log[1].weight == 4.0

    def test_unweighted_ignores_magnitudes(self):
        log = parse_temporal_edge_list(["0 1 2.5 10"])
        assert log[0].weight is None


class TestRefusals:
    def test_wrong_column_count(self):
        with pytest.raises(DatasetError, match="expected 'u v ts'"):
            parse_temporal_edge_list(["0 1"])
        with pytest.raises(DatasetError, match="expected 'u v ts'"):
            parse_temporal_edge_list(["0 1 1 10 99"])

    def test_non_numeric_fields(self):
        with pytest.raises(DatasetError, match="non-numeric"):
            parse_temporal_edge_list(["a b 10"])
        with pytest.raises(DatasetError, match="non-numeric"):
            parse_temporal_edge_list(["0 1 x 10"])

    def test_zero_sign_weight_ambiguous(self):
        with pytest.raises(DatasetError, match="ambiguous"):
            parse_temporal_edge_list(["0 1 0 10"])

    def test_self_loop_refused(self):
        with pytest.raises(DatasetError, match="self-loop"):
            parse_temporal_edge_list(["3 3 10"])

    def test_error_names_line(self):
        with pytest.raises(DatasetError, match="<lines>:2"):
            parse_temporal_edge_list(["0 1 10", "bad line here again"])


class TestSources:
    def test_file_object(self):
        log = parse_temporal_edge_list(io.StringIO("0 1 10\n1 2 20\n"))
        assert len(log) == 2

    def test_plain_path(self, tmp_path):
        p = tmp_path / "edges.txt"
        p.write_text("0 1 10\n")
        log = parse_temporal_edge_list(str(p))
        assert len(log) == 1 and log.name == "edges.txt"

    def test_gzip_path(self, tmp_path):
        p = tmp_path / "edges.txt.gz"
        with gzip.open(p, "wt") as f:
            f.write("# header\n0 1 10\n1 2 -1 20\n")
        log = parse_temporal_edge_list(str(p))
        assert len(log) == 1  # dangling delete dropped
        assert log.dropped == {"dangling_delete": 1}


class TestRoundTrip:
    def test_gzip_round_trip_is_event_identical(self, tmp_path):
        log = temporal_contact(n=30, events=120, span=40.0, seed=3)
        path = tmp_path / "contact.tsv.gz"
        write_temporal_edge_list(log, str(path), header="contact corpus")
        back = parse_temporal_edge_list(str(path), weighted=log.weighted)
        assert back.fingerprint() == log.fingerprint()
        assert list(back) == list(log)
        assert back.dropped == {}

    def test_plain_round_trip(self, tmp_path):
        log = temporal_contact(n=20, events=80, span=20.0, seed=4)
        path = tmp_path / "contact.tsv"
        write_temporal_edge_list(log, str(path))
        back = parse_temporal_edge_list(str(path))
        assert back.fingerprint() == log.fingerprint()
