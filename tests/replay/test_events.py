"""TemporalEvent / TemporalEventLog: normalization, cuts, identity."""

import pytest

from repro.exceptions import DatasetError
from repro.graph.weighted import WeightedGraph
from repro.replay import (
    DELETE,
    INSERT,
    SET_WEIGHT,
    TemporalEvent,
    TemporalEventLog,
    events_to_updates,
    make_event,
)
from repro.workloads import DeleteEdge, InsertEdge, SetWeight


class TestTemporalEvent:
    def test_endpoints_normalized(self):
        e = TemporalEvent(1.0, INSERT, 5, 2)
        assert (e.u, e.v) == (2, 5)
        assert e.edge == (2, 5)
        assert make_event(1.0, INSERT, 5, 2) == e

    def test_unknown_kind_refused(self):
        with pytest.raises(DatasetError, match="unknown temporal event kind"):
            TemporalEvent(0.0, "upsert", 0, 1)

    def test_self_loop_refused(self):
        with pytest.raises(DatasetError, match="self-loop"):
            TemporalEvent(0.0, INSERT, 3, 3)

    def test_line_roundtrips_kind(self):
        assert make_event(2.0, DELETE, 1, 0).line() == "0 1 -1 2.000000"
        assert make_event(2.0, INSERT, 0, 1).line() == "0 1 1 2.000000"
        assert make_event(2.0, INSERT, 0, 1, weight=2.5).line() \
            == "0 1 2.5 2.000000"


class TestFromRaw:
    def test_sorts_by_timestamp_stably(self):
        raw = [
            make_event(5.0, INSERT, 0, 1),
            make_event(1.0, INSERT, 2, 3),
            make_event(5.0, INSERT, 4, 5),
        ]
        log = TemporalEventLog.from_raw(raw)
        assert [e.ts for e in log] == [1.0, 5.0, 5.0]
        # Equal timestamps keep their input order (stable sort).
        assert log[1].edge == (0, 1) and log[2].edge == (4, 5)

    def test_duplicate_insert_dropped(self):
        raw = [make_event(1.0, INSERT, 0, 1), make_event(2.0, INSERT, 1, 0)]
        log = TemporalEventLog.from_raw(raw)
        assert len(log) == 1
        assert log.dropped == {"duplicate_insert": 1}

    def test_delete_before_insert_dropped(self):
        raw = [make_event(1.0, DELETE, 0, 1), make_event(2.0, INSERT, 0, 1)]
        log = TemporalEventLog.from_raw(raw)
        assert [e.kind for e in log] == [INSERT]
        assert log.dropped == {"dangling_delete": 1}

    def test_insert_delete_insert_all_kept(self):
        raw = [
            make_event(1.0, INSERT, 0, 1),
            make_event(2.0, DELETE, 0, 1),
            make_event(3.0, INSERT, 0, 1),
        ]
        log = TemporalEventLog.from_raw(raw)
        assert [e.kind for e in log] == [INSERT, DELETE, INSERT]
        assert log.dropped == {}

    def test_set_weight_dropped_on_unweighted(self):
        raw = [
            make_event(1.0, INSERT, 0, 1),
            make_event(2.0, SET_WEIGHT, 0, 1, weight=3.0),
        ]
        log = TemporalEventLog.from_raw(raw)
        assert [e.kind for e in log] == [INSERT]
        assert log.dropped == {"unweighted_set_weight": 1}

    def test_weighted_duplicate_insert_becomes_set_weight(self):
        raw = [
            make_event(1.0, INSERT, 0, 1, weight=1.0),
            make_event(2.0, INSERT, 0, 1, weight=4.0),
        ]
        log = TemporalEventLog.from_raw(raw, weighted=True)
        assert [e.kind for e in log] == [INSERT, SET_WEIGHT]
        assert log[1].weight == 4.0
        assert log.dropped == {"rewritten_set_weight": 1}

    def test_weighted_missing_weight_defaults_to_one(self):
        log = TemporalEventLog.from_raw(
            [make_event(1.0, INSERT, 0, 1)], weighted=True
        )
        assert log[0].weight == 1.0

    def test_dangling_set_weight_dropped(self):
        raw = [make_event(1.0, SET_WEIGHT, 0, 1, weight=2.0)]
        log = TemporalEventLog.from_raw(raw, weighted=True)
        assert len(log) == 0
        assert log.dropped == {"dangling_set_weight": 1}


class TestCut:
    def _log(self):
        return TemporalEventLog.from_raw([
            make_event(1.0, INSERT, 0, 1),
            make_event(2.0, INSERT, 1, 2),
            make_event(3.0, DELETE, 0, 1),
            make_event(4.0, INSERT, 2, 3),
        ])

    def test_cut_contains_all_vertices_and_live_edges(self):
        log = self._log()
        g = log.cut(2.5)
        # Every vertex the log ever names, even ones not yet touched.
        assert sorted(g.vertices()) == [0, 1, 2, 3]
        assert g.has_edge(0, 1) and g.has_edge(1, 2)
        assert not g.has_edge(2, 3)

    def test_cut_after_delete(self):
        g = self._log().cut(3.5)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_split_partitions_events(self):
        log = self._log()
        g, tail = log.split(2.0)
        assert g.num_edges == 2
        assert [e.ts for e in tail] == [3.0, 4.0]

    def test_weighted_cut(self):
        log = TemporalEventLog.from_raw([
            make_event(1.0, INSERT, 0, 1, weight=2.0),
            make_event(2.0, SET_WEIGHT, 0, 1, weight=5.0),
        ], weighted=True)
        g = log.cut(3.0)
        assert isinstance(g, WeightedGraph)
        assert g.weight(0, 1) == 5.0


class TestIdentity:
    def test_fingerprint_tracks_content(self):
        a = TemporalEventLog.from_raw([make_event(1.0, INSERT, 0, 1)])
        b = TemporalEventLog.from_raw([make_event(1.0, INSERT, 0, 1)])
        c = TemporalEventLog.from_raw([make_event(1.5, INSERT, 0, 1)])
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_stats_shape(self):
        log = TemporalEventLog.from_raw([
            make_event(0.0, INSERT, 0, 1),
            make_event(4.0, DELETE, 0, 1),
        ])
        s = log.stats()
        assert s["events"] == 2 and s["inserts"] == 1 and s["deletes"] == 1
        assert s["span"] == 4.0
        assert s["churn_rate"] == 0.5
        assert s["events_per_unit_time"] == 0.5

    def test_events_to_updates(self):
        updates = events_to_updates([
            make_event(1.0, INSERT, 0, 1),
            make_event(2.0, DELETE, 0, 1),
            make_event(3.0, SET_WEIGHT, 0, 1, weight=2.0),
        ])
        assert updates == [
            InsertEdge(0, 1), DeleteEdge(0, 1), SetWeight(0, 1, 2.0),
        ]
