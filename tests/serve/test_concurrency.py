"""Concurrency stress: every served answer is consistent with some epoch.

The strong form of the no-torn-reads guarantee: N reader threads record
(snapshot.seq, pair, answer) while a writer applies a live update stream.
Afterwards the WAL is replayed *progressively* from the initial checkpoint
— after replaying batch k, a reference engine holds exactly the state
snapshot seq k was published from — and every recorded answer must match
the reference at its sequence number.  A reader that ever observed a
half-applied batch, a mutated snapshot, or a snapshot that matches no
published prefix of the log fails the comparison.

This doubles as the end-to-end WAL-replay equivalence check under real
concurrency (the per-backend equivalence tests live in test_service.py).
"""

import os
import random
import threading
import time

import pytest

from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import ServeError
from repro.graph.generators import erdos_renyi
from repro.serve import (
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    SPCService,
    engine_from_payload,
    load_checkpoint,
    read_wal,
    run_loadgen,
)
from repro.workloads import random_insertions

READERS = 3
READS_PER_THREAD = 400


def _reader(service, pairs, stop, records, seed):
    rng = random.Random(seed)
    last_seq = -1
    while len(records) < READS_PER_THREAD and not stop.is_set():
        s, t = pairs[rng.randrange(len(pairs))]
        snap = service.snapshot()
        assert snap.seq >= last_seq, "snapshot publication went backwards"
        last_seq = snap.seq
        records.append((snap.seq, s, t, snap.query(s, t)))


@pytest.mark.parametrize("backend", ["core", "sd"])
def test_readers_only_observe_published_epochs(tmp_path, backend):
    graph = erdos_renyi(50, 120, seed=5)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    vertices = sorted(graph.vertices())
    rng = random.Random(9)
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(128)
    ]
    insertions = random_insertions(graph, 30, seed=7)
    stream = list(insertions) + [u.undo() for u in reversed(insertions)]

    d = str(tmp_path)
    service = SPCService(
        engine, durability_dir=d, publish_every=4, max_staleness=0.005
    )
    stop = threading.Event()
    all_records = [[] for _ in range(READERS)]
    threads = [
        threading.Thread(
            target=_reader,
            args=(service, pairs, stop, all_records[i], 100 + i),
        )
        for i in range(READERS)
    ]
    for t in threads:
        t.start()
    # Writer: feed the stream in small chunks while the readers hammer.
    for start in range(0, len(stream), 3):
        service.submit_many(stream[start:start + 3])
        time.sleep(0.001)
    service.flush()
    stop.set()
    for t in threads:
        t.join()
    service.close()

    # Progressive replay: reference state at seq k = checkpoint + WAL[1..k].
    by_seq = {}
    for records in all_records:
        for seq, s, t, answer in records:
            by_seq.setdefault(seq, []).append((s, t, answer))
    assert sum(len(v) for v in by_seq.values()) >= READERS * READS_PER_THREAD

    reference = engine_from_payload(
        load_checkpoint(os.path.join(d, SNAPSHOT_FILENAME))
    )
    replayed = {0}
    for s, t, answer in by_seq.get(0, []):
        assert reference.index.query(s, t) == answer
    for seq, updates in read_wal(os.path.join(d, WAL_FILENAME)):
        reference.apply_stream(updates)
        replayed.add(seq)
        for s, t, answer in by_seq.get(seq, []):
            assert reference.index.query(s, t) == answer, (
                f"answer served at seq {seq} matches no published epoch"
            )
    # every snapshot a reader held corresponds to a replayable WAL prefix
    assert set(by_seq) <= replayed


class TestLoadgen:
    def test_quick_run_reports_and_passes_checks(self):
        report = run_loadgen(
            backend="core", readers=2, duration=0.3, n=80, m=200, churn=15
        )
        assert report["reads"] > 0
        assert report["read_qps"] > 0
        assert report["updates_applied"] > 0
        assert report["snapshots_published"] >= 1
        assert report["consistency_problems"] == []
        assert report["read_latency_ms"]["p99"] >= report["read_latency_ms"]["p50"]

    def test_all_backends_smoke(self):
        for backend in ("directed", "weighted", "sd"):
            report = run_loadgen(
                backend=backend, readers=2, duration=0.2, n=60, m=140,
                churn=10,
            )
            assert report["consistency_problems"] == []
            assert report["reads"] > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServeError, match="loadgen"):
            run_loadgen(backend="nope", duration=0.05)

    def test_reader_crash_fails_the_run(self, monkeypatch):
        from repro.serve.snapshot import SnapshotView

        def boom(self, s, t):
            raise KeyError("snapshot corruption stand-in")

        monkeypatch.setattr(SnapshotView, "query", boom)
        with pytest.raises(ServeError, match="crashed"):
            run_loadgen(backend="core", readers=2, duration=0.2, n=60,
                        m=140, churn=10)
