"""Label-delta journal tests (``ServeConfig.label_journal``).

The journal is the replication feed for hub-partitioned shards
(:mod:`repro.shard`): one record per applied batch carrying the post-batch
label state of every dirty vertex.  The core guarantee tested here is that
*bootstrapping from the checkpoint and replaying the journal reproduces the
primary's label state exactly*, on every backend and across rebuilds,
restores and compactions.
"""

import json
import os

import pytest

import repro
from repro.graph.directed import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.undirected import Graph
from repro.graph.weighted import WeightedGraph
from repro.serve import ServeConfig, SPCService, restore
from repro.serve.persist import (
    checkpoint_label_slice,
    filter_label_payload,
    load_checkpoint,
)
from repro.serve.service import JOURNAL_FILENAME, SNAPSHOT_FILENAME
from repro.serve.wal import WalTailer
from repro.exceptions import ServeError
from repro.workloads import DeleteEdge, DeleteVertex, InsertEdge, SetWeight


def journal_records(dirpath):
    """Raw (seq, ops) pairs from the journal file."""
    out = []
    with open(os.path.join(dirpath, JOURNAL_FILENAME)) as f:
        for line in f:
            rec = json.loads(line)
            out.append((rec["seq"], rec["updates"]))
    return out


def replay_into(store, ops):
    """Apply one journal record's ops to a {vertex: payload} dict."""
    for op in ops:
        kind = op[0]
        if kind == "nop":
            continue
        if kind == "reset":
            store.clear()
            store.update({v: lp for v, lp in op[1]})
            continue
        assert kind == "lb"
        _, v, lp = op
        if lp is None:
            store.pop(v, None)
        else:
            store[v] = lp


def materialized_state(dirpath, after_seq=0):
    """Bootstrap from the checkpoint, replay the journal: {vertex: payload}."""
    payload = load_checkpoint(os.path.join(dirpath, SNAPSHOT_FILENAME))
    store = checkpoint_label_slice(payload, keep=lambda h: True)
    tailer = WalTailer(
        os.path.join(dirpath, JOURNAL_FILENAME),
        after_seq=payload["applied_seq"],
        decode=lambda rec: rec,
    )
    records, gap = tailer.poll()
    assert not gap
    for _seq, ops in records:
        replay_into(store, ops)
    return store, tailer.last_seq


def primary_state(service):
    """{vertex: label payload} straight off the live backend."""
    backend = service.engine.backend
    return {
        v: backend.label_payload(v) for v in service.engine.graph.vertices()
    }


def service_over(graph, tmp_path, backend=None, **cfg):
    config = ServeConfig(
        durability_dir=str(tmp_path), label_journal=True, **cfg
    )
    engine = repro.open(graph, backend=backend) if backend else repro.open(graph)
    return SPCService(engine, config)


class TestJournalWriter:
    def test_requires_durability_dir(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ServeError, match="label_journal"):
            SPCService(repro.open(g), ServeConfig(label_journal=True))

    def test_one_record_per_batch_lb_ops(self, tmp_path):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)], vertices=[0, 1, 2, 3, 4])
        with service_over(g, tmp_path) as svc:
            svc.submit(InsertEdge(3, 4))
            svc.flush()
            svc.submit(DeleteEdge(1, 2))
            svc.flush()
        recs = journal_records(tmp_path)
        assert [seq for seq, _ in recs] == [1, 2]
        for _seq, ops in recs:
            assert ops and all(op[0] == "lb" for op in ops)

    def test_noop_batch_journals_nop_not_marker(self, tmp_path):
        # A successfully applied batch that moves no labels must still
        # advance the journal seq — an *empty* ops list is reserved for
        # the compaction marker and would read as one.
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 1.0)])
        with service_over(g, tmp_path) as svc:
            # a far-too-heavy edge changes the graph but no shortest path,
            # so the batch applies (WAL seq 1) with zero dirty vertices
            svc.submit(InsertEdge(0, 2, 100.0))
            svc.flush()
        recs = journal_records(tmp_path)
        assert recs == [(1, [["nop"]])]

    def test_vertex_drop_journals_none_payload(self, tmp_path):
        g = Graph.from_edges([(0, 1), (1, 2)], vertices=[0, 1, 2])
        with service_over(g, tmp_path) as svc:
            svc.submit(DeleteVertex(2))
            svc.flush()
        (_seq, ops), = journal_records(tmp_path)
        dropped = [op for op in ops if op[0] == "lb" and op[1] == 2]
        assert dropped and dropped[0][2] is None

    def test_compaction_truncates_journal_in_lockstep(self, tmp_path):
        g = Graph.from_edges([(0, 1), (1, 2)], vertices=[0, 1, 2, 3])
        with service_over(g, tmp_path) as svc:
            svc.submit(InsertEdge(2, 3))
            svc.flush()
            svc.checkpoint(truncate_wal=True)
            svc.submit(InsertEdge(0, 3))
            svc.flush()
        recs = journal_records(tmp_path)
        # marker at the checkpoint seq, then the post-checkpoint batch
        assert recs[0] == (1, [])
        assert recs[1][0] == 2 and recs[1][1]
        # a tailer resuming past the marker sees no gap
        tailer = WalTailer(
            os.path.join(tmp_path, JOURNAL_FILENAME),
            after_seq=1, decode=lambda rec: rec,
        )
        records, gap = tailer.poll()
        assert not gap and [s for s, _ in records] == [2]

    def test_resume_appends_reset_record(self, tmp_path):
        g = Graph.from_edges([(0, 1), (1, 2)], vertices=[0, 1, 2])
        with service_over(g, tmp_path) as svc:
            svc.submit(InsertEdge(0, 2))
            svc.flush()
        cfg = ServeConfig(durability_dir=str(tmp_path), label_journal=True)
        restore(str(tmp_path), cfg).close()
        recs = journal_records(tmp_path)
        assert recs[-1][0] == 1  # duplicate seq: tailers past it skip it
        assert recs[-1][1][0][0] == "reset"

    def test_sd_rebuild_on_delete_emits_reset(self, tmp_path):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        with service_over(g, tmp_path, backend="sd") as svc:
            svc.submit(InsertEdge(0, 3))
            svc.flush()
            svc.submit(DeleteEdge(1, 2))  # SD deletes rebuild the index
            svc.flush()
        recs = journal_records(tmp_path)
        assert [op[0] for op in recs[1][1]] == ["reset"]


class TestReplayFidelity:
    """Checkpoint + journal replay == live backend labels, per backend."""

    def churn(self, svc, updates):
        for u in updates:
            svc.submit(u)
            svc.flush()

    def assert_replay_matches(self, svc, tmp_path):
        store, last = materialized_state(tmp_path)
        assert last == svc.applied_seq
        live = primary_state(svc)
        # replay drops vanished vertices; the live map keeps None for them
        assert store == {v: lp for v, lp in live.items() if lp is not None}

    def test_core(self, tmp_path):
        g = erdos_renyi(18, 36, seed=5)
        svc = service_over(g, tmp_path)
        self.churn(svc, [
            InsertEdge(0, 9), InsertEdge(1, 12), DeleteEdge(0, 9),
            DeleteVertex(17), InsertEdge(2, 14),
        ])
        self.assert_replay_matches(svc, tmp_path)
        svc.close()

    def test_directed(self, tmp_path):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        svc = service_over(g, tmp_path)
        self.churn(svc, [InsertEdge(0, 2), DeleteEdge(1, 2), InsertEdge(2, 1)])
        self.assert_replay_matches(svc, tmp_path)
        svc.close()

    def test_weighted(self, tmp_path):
        g = WeightedGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 5.0)]
        )
        svc = service_over(g, tmp_path)
        self.churn(svc, [
            SetWeight(0, 3, 2.0), InsertEdge(1, 3, 1.0), DeleteEdge(1, 2),
        ])
        self.assert_replay_matches(svc, tmp_path)
        svc.close()

    def test_sd(self, tmp_path):
        g = erdos_renyi(14, 26, seed=9)
        svc = service_over(g, tmp_path, backend="sd")
        self.churn(svc, [InsertEdge(0, 7), DeleteEdge(0, 1), InsertEdge(3, 11)])
        self.assert_replay_matches(svc, tmp_path)
        svc.close()

    def test_replay_across_engine_rebuild(self, tmp_path):
        # rebuild_every replaces the index object mid-stream; the journal
        # must bridge it with a reset record, not stale deltas.
        g = erdos_renyi(16, 30, seed=3)
        svc = SPCService(
            repro.open(g, rebuild_every=2),
            ServeConfig(durability_dir=str(tmp_path), label_journal=True),
        )
        self.churn(svc, [
            InsertEdge(0, 9), InsertEdge(1, 11), InsertEdge(2, 13),
            InsertEdge(3, 15), DeleteEdge(0, 9),
        ])
        recs = journal_records(tmp_path)
        assert any(
            op[0] == "reset" for _seq, ops in recs for op in ops
        )
        self.assert_replay_matches(svc, tmp_path)
        svc.close()


class TestSliceHelpers:
    def test_filter_list_payload(self):
        lp = [[0, 1, 1], [3, 2, 4], [7, 1, 2]]
        assert filter_label_payload(lp, lambda h: h >= 3) == [
            [3, 2, 4], [7, 1, 2]
        ]

    def test_filter_directed_payload(self):
        lp = {"in": [[0, 1, 1], [2, 2, 1]], "out": [[1, 1, 1]]}
        assert filter_label_payload(lp, lambda h: h < 2) == {
            "in": [[0, 1, 1]], "out": [[1, 1, 1]],
        }

    def test_filter_none_passes_through(self):
        assert filter_label_payload(None, lambda h: True) is None

    def test_checkpoint_slice_keeps_all_vertices(self, tmp_path):
        g = erdos_renyi(12, 22, seed=1)
        with service_over(g, tmp_path) as svc:
            svc.flush()
        payload = load_checkpoint(os.path.join(tmp_path, SNAPSHOT_FILENAME))
        full = checkpoint_label_slice(payload, keep=lambda h: True)
        lo = checkpoint_label_slice(payload, keep=lambda h: h < 3)
        hi = checkpoint_label_slice(payload, keep=lambda h: h >= 3)
        assert set(full) == set(lo) == set(hi) == set(g.vertices())
        for v in full:
            assert sorted(lo[v] + hi[v]) == sorted(full[v])
