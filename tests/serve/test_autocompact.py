"""Automatic WAL compaction: the every-k / max-bytes checkpoint policy."""

import os

import pytest

import repro
from repro.exceptions import ServeError
from repro.serve import (
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    ServeConfig,
    SPCService,
    load_checkpoint,
    read_wal,
    restore,
)
from repro.workloads import InsertEdge, random_insertions


def _service(graph, tmp_path, **overrides):
    return SPCService(
        repro.open(graph), durability_dir=str(tmp_path), **overrides
    )


class TestConfigValidation:
    def test_negative_knobs_rejected(self):
        with pytest.raises(ServeError, match="auto_checkpoint"):
            ServeConfig(auto_checkpoint_every_k_batches=-1)
        with pytest.raises(ServeError, match="wal_max_bytes"):
            ServeConfig(wal_max_bytes=-1)

    def test_compaction_requires_durability_dir(self, paper_graph):
        # the config alone may defer the pairing (wrappers inject the
        # directory later), but a service must refuse the combination
        config = ServeConfig(auto_checkpoint_every_k_batches=4)
        with pytest.raises(ServeError, match="durability_dir"):
            SPCService(repro.open(paper_graph), config=config)
        with pytest.raises(ServeError, match="durability_dir"):
            SPCService(repro.open(paper_graph), wal_max_bytes=1024)
        # with a durability dir both knobs are fine
        ServeConfig(durability_dir="state", auto_checkpoint_every_k_batches=4,
                    wal_max_bytes=1024)

    def test_cluster_accepts_compaction_serve_config(self, tmp_path):
        # SPCCluster injects state_dir into the serve config, so a bare
        # compaction config must be constructible and work end to end
        from repro.cluster import SPCCluster
        from repro.graph.generators import erdos_renyi

        engine = repro.open(erdos_renyi(30, 60, seed=1))
        config = ServeConfig(auto_checkpoint_every_k_batches=2)
        with SPCCluster(engine, str(tmp_path), replicas=1,
                        serve_config=config) as c:
            insertions = random_insertions(engine.graph, 6, seed=2)
            for update in insertions:
                c.submit(update)
                c.flush()
            c.sync()
            assert c.primary.stats()["wal_compactions"] >= 2
            pairs = [(u.u, u.v) for u in insertions]
            replica = c.replicas["replica-0"]
            assert replica.query_many(pairs) == c.primary.query_many(pairs)


class TestEveryKBatches:
    def test_writer_compacts_every_k_batches(self, paper_graph, tmp_path):
        d = str(tmp_path)
        with _service(paper_graph, tmp_path,
                      auto_checkpoint_every_k_batches=2) as service:
            insertions = random_insertions(service.engine.graph, 6, seed=1)
            for update in insertions:  # flush per update -> one batch each
                service.submit(update)
                service.flush()
            stats = service.stats()
            assert stats["wal_compactions"] >= 3
            # the surviving WAL holds only records past the last checkpoint
            ckpt_seq = load_checkpoint(
                os.path.join(d, SNAPSHOT_FILENAME)
            )["applied_seq"]
            assert ckpt_seq >= 6 - 2
            for seq, updates in read_wal(os.path.join(d, WAL_FILENAME)):
                assert seq >= ckpt_seq
            answers = {
                (u.u, u.v): service.query(u.u, u.v) for u in insertions
            }
        restored = restore(d)
        try:
            assert restored.applied_seq == 6
            for (s, t), answer in answers.items():
                assert restored.query(s, t) == answer
        finally:
            restored.close()

    def test_manual_checkpoint_resets_the_counter(self, paper_graph,
                                                  tmp_path):
        with _service(paper_graph, tmp_path,
                      auto_checkpoint_every_k_batches=3) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
            service.checkpoint()  # durable path -> counter resets to seq 1
            service.submit(InsertEdge(0, 9))
            service.flush()
            assert service.stats()["wal_compactions"] == 0


class TestMaxBytes:
    def test_writer_compacts_when_wal_exceeds_budget(self, paper_graph,
                                                     tmp_path):
        d = str(tmp_path)
        with _service(paper_graph, tmp_path, wal_max_bytes=64) as service:
            insertions = random_insertions(service.engine.graph, 5, seed=2)
            for update in insertions:
                service.submit(update)
                service.flush()
            assert service.stats()["wal_compactions"] >= 1
            # the live WAL never stays far beyond the budget
            assert service.stats()["wal_bytes"] <= 64 + 128
        restored = restore(d)
        try:
            assert restored.applied_seq == 5
        finally:
            restored.close()

    def test_disabled_by_default(self, paper_graph, tmp_path):
        d = str(tmp_path)
        with _service(paper_graph, tmp_path) as service:
            insertions = random_insertions(service.engine.graph, 5, seed=3)
            for update in insertions:
                service.submit(update)
                service.flush()
            assert service.stats()["wal_compactions"] == 0
        assert len(list(read_wal(os.path.join(d, WAL_FILENAME)))) == 5


class TestFailureHandling:
    def test_failed_compaction_keeps_serving(self, paper_graph, tmp_path,
                                             monkeypatch):
        from repro.serve import service as service_mod

        calls = {"n": 0}
        real = service_mod.save_checkpoint

        def flaky(path, engine, applied_seq=0):
            calls["n"] += 1
            if calls["n"] > 1:  # let the seq-0 boot checkpoint through
                raise OSError("disk full")
            return real(path, engine, applied_seq=applied_seq)

        monkeypatch.setattr(service_mod, "save_checkpoint", flaky)
        with _service(paper_graph, tmp_path,
                      auto_checkpoint_every_k_batches=1) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
            service.submit(InsertEdge(0, 9))
            service.flush()
            # both compactions failed, got recorded, and serving continued
            assert service.stats()["wal_compactions"] == 0
            assert any(
                isinstance(exc, ServeError) and "auto checkpoint" in str(exc)
                for _, exc in service.errors
            )
            assert service.query(0, 9) == (1, 1)
            # the WAL kept every record, so durability is intact
            wal = list(read_wal(os.path.join(str(tmp_path), WAL_FILENAME)))
            assert [seq for seq, _ in wal] == [1, 2]
