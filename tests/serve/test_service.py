"""SPCService: the writer loop, publish policy, durability, and restore."""

import os

import pytest

import repro
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import ServeError
from repro.graph.generators import erdos_renyi, random_directed, random_weighted
from repro.serve import (
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    ServeConfig,
    SPCService,
    load_checkpoint,
    read_wal,
    restore,
    serve,
)
from repro.workloads import (
    DeleteEdge,
    InsertEdge,
    random_deletions,
    random_insertions,
)

BACKEND_GRAPHS = [
    ("core", lambda: erdos_renyi(40, 90, seed=3)),
    ("directed", lambda: random_directed(40, 90, seed=3)),
    ("weighted", lambda: random_weighted(40, 90, seed=3)),
    ("sd", lambda: erdos_renyi(40, 90, seed=3)),
]


def all_pairs_sample(graph, k=8):
    vs = sorted(graph.vertices())
    return [(s, t) for s in vs[:k] for t in vs[-k:]]


def make_engine(backend, make):
    return SPCEngine(make(), config=EngineConfig(backend=backend))


class TestServing:
    def test_query_before_any_update(self, paper_graph):
        with SPCService(repro.open(paper_graph)) as service:
            assert service.query(0, 4) == (3, 3)  # Table 2: (v0, 3, 3)
            assert service.snapshot().seq == 0

    def test_update_visible_after_flush(self, paper_graph):
        with SPCService(repro.open(paper_graph)) as service:
            service.submit(InsertEdge(0, 4))
            snap = service.flush()
            assert snap.seq == 1
            assert service.query(0, 4) == (1, 1)

    def test_serve_convenience_accepts_graph(self, paper_graph):
        with serve(paper_graph, publish_every=1) as service:
            assert service.query(0, 4) == (3, 3)
            assert service.engine.backend_name == "core"

    def test_query_many_single_snapshot(self, paper_graph):
        with SPCService(repro.open(paper_graph)) as service:
            pairs = [(0, 4), (0, 9), (3, 7)]
            assert service.query_many(pairs) == [
                service.query(s, t) for s, t in pairs
            ]

    def test_batched_submissions_coalesce(self, paper_graph):
        with SPCService(repro.open(paper_graph)) as service:
            service.submit_many([
                InsertEdge(0, 4), DeleteEdge(0, 4), InsertEdge(0, 9),
            ])
            service.flush()
            stats = service.stats()
            assert service.query(0, 9) == (1, 1)
            assert not service.engine.graph.has_edge(0, 4)
            assert stats["cancelled_updates"] == 2
            assert stats["applied_updates"] == 1

    def test_bad_update_recorded_not_fatal(self, paper_graph):
        # coalescing off: set semantics would otherwise absorb the bad
        # delete ("make (4, 8) absent" is already satisfied) instead of
        # exercising the error path.
        engine = repro.open(paper_graph, coalesce_batches=False)
        with SPCService(engine) as service:
            service.submit(DeleteEdge(4, 8))  # not an edge
            service.submit(InsertEdge(0, 4))
            service.flush()
            assert len(service.errors) == 1
            assert service.query(0, 4) == (1, 1)  # kept serving

    def test_malformed_update_does_not_kill_the_writer(self, paper_graph):
        with SPCService(repro.open(paper_graph)) as service:
            service.submit("junk")  # no .apply — TypeError inside the writer
            service.submit(InsertEdge(0, 4))
            service.flush()
            assert len(service.errors) == 1
            assert service.query(0, 4) == (1, 1)  # writer survived

    def test_unloggable_update_rejected_when_durable(self, paper_graph,
                                                     tmp_path):
        from repro.workloads.updates import InsertVertex

        class Custom:
            def apply(self, dynamic):
                return dynamic.insert_vertex(99)

        d = str(tmp_path)
        with SPCService(repro.open(paper_graph), durability_dir=d) as service:
            service.submit_many([Custom(), InsertVertex(50)])
            service.flush()
            # the WAL can't record Custom, so it must not be applied —
            # otherwise restore would silently diverge from the live engine.
            assert 99 not in service.engine.graph
            assert 50 in service.engine.graph
            assert any("WAL-serializable" in str(exc)
                       for _, exc in service.errors)

    def test_dead_writer_with_full_queue_times_out_not_hangs(self,
                                                             paper_graph,
                                                             monkeypatch):
        service = SPCService(repro.open(paper_graph), queue_capacity=1,
                             publish_every=1)
        # Kill the writer through an infrastructure failure (publish), then
        # fill the bounded queue: flush must surface the death within its
        # timeout instead of blocking forever inside queue.put.
        monkeypatch.setattr(
            service, "_publish",
            lambda: (_ for _ in ()).throw(RuntimeError("publish broke")),
        )
        service.submit(InsertEdge(0, 4))
        service._thread.join(5.0)
        assert not service._thread.is_alive()
        service._queue.put(InsertEdge(5, 8))  # refill the dead queue
        with pytest.raises(ServeError, match="writer thread died"):
            service.flush(timeout=0.5)

    def test_writer_death_surfaces_promptly_in_flush(self, paper_graph,
                                                     monkeypatch):
        import time as time_mod

        service = SPCService(repro.open(paper_graph), publish_every=1)
        monkeypatch.setattr(
            service, "_publish",
            lambda: (_ for _ in ()).throw(RuntimeError("publish broke")),
        )
        service.submit(InsertEdge(0, 4))
        start = time_mod.time()
        with pytest.raises(ServeError):
            service.flush(timeout=20.0)
        # the death must surface via the released token / dead-writer
        # check, not by burning the whole flush timeout
        assert time_mod.time() - start < 10.0

    def test_uncoalescible_update_survives_the_writer(self, paper_graph):
        from repro.workloads import SetWeight

        with SPCService(repro.open(paper_graph)) as service:
            # SetWeight on an unweighted graph makes coalescing itself
            # raise; the batch must fall back to verbatim replay so the
            # good update applies and the bad one lands in errors.
            service.submit_many([SetWeight(0, 1, 2.0), InsertEdge(0, 4)])
            service.flush()
            assert len(service.errors) == 1
            assert service.query(0, 4) == (1, 1)

    def test_submit_racing_writer_stop_raises(self, paper_graph):
        from repro.serve.service import _STOP

        service = SPCService(repro.open(paper_graph))
        # Simulate the close() race window: the writer consumes its stop
        # sentinel and exits, but _closed is not yet set.
        service._queue.put(_STOP)
        service._thread.join(5.0)
        assert not service._thread.is_alive()
        with pytest.raises(ServeError, match="closed|stopped"):
            service.submit(InsertEdge(0, 4))
        service.close()

    def test_mixed_vertex_edge_batch_applies_verbatim(self, paper_graph):
        from repro.workloads.updates import InsertVertex

        with SPCService(repro.open(paper_graph)) as service:
            service.submit_many([
                InsertEdge(0, 4), InsertVertex(50, edges=(0,)),
                DeleteEdge(0, 4),
            ])
            service.flush()
            assert 50 in service.engine.graph
            assert not service.engine.graph.has_edge(0, 4)
            assert service.errors == []

    def test_submit_after_close_raises(self, paper_graph):
        service = SPCService(repro.open(paper_graph))
        service.close()
        with pytest.raises(ServeError, match="closed"):
            service.submit(InsertEdge(0, 4))
        service.close()  # idempotent


class TestPublishPolicy:
    def test_publish_every_one_publishes_per_batch(self, paper_graph):
        with SPCService(repro.open(paper_graph), publish_every=1) as service:
            for i, upd in enumerate([InsertEdge(0, 4), InsertEdge(5, 8)]):
                service.submit(upd)
                snap = service.flush()
                assert snap.seq == i + 1

    def test_max_staleness_publishes_without_flush(self, paper_graph):
        import time

        config = ServeConfig(publish_every=10_000, max_staleness=0.02)
        with SPCService(repro.open(paper_graph), config) as service:
            service.submit(InsertEdge(0, 4))
            deadline = time.time() + 5.0
            while service.snapshot().seq == 0:
                assert time.time() < deadline, "staleness publish never fired"
                time.sleep(0.005)
            assert service.query(0, 4) == (1, 1)

    def test_epoch_and_seq_monotone(self, paper_graph):
        with SPCService(repro.open(paper_graph), publish_every=1) as service:
            seen = [service.snapshot()]
            for upd in [InsertEdge(0, 4), DeleteEdge(0, 4), InsertEdge(0, 9)]:
                service.submit(upd)
                service.flush()
                seen.append(service.snapshot())
            seqs = [s.seq for s in seen]
            epochs = [s.epoch for s in seen]
            assert seqs == sorted(seqs)
            assert epochs == sorted(epochs)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ServeError):
            ServeConfig(publish_every=0)
        with pytest.raises(ServeError):
            ServeConfig(max_staleness=0)
        with pytest.raises(ServeError):
            ServeConfig(drain_max=0)
        with pytest.raises(ServeError):
            ServeConfig(queue_capacity=-1)

    def test_replace(self):
        config = ServeConfig().replace(publish_every=5)
        assert config.publish_every == 5


class TestDurability:
    def test_files_created(self, paper_graph, tmp_path):
        d = str(tmp_path / "state")
        with SPCService(repro.open(paper_graph), durability_dir=d) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
        assert os.path.exists(os.path.join(d, SNAPSHOT_FILENAME))
        records = list(read_wal(os.path.join(d, WAL_FILENAME)))
        assert records == [(1, [InsertEdge(0, 4)])]

    def test_existing_checkpoint_guard(self, paper_graph, tmp_path):
        d = str(tmp_path)
        SPCService(repro.open(paper_graph), durability_dir=d).close()
        with pytest.raises(ServeError, match="restore"):
            SPCService(repro.open(paper_graph), durability_dir=d)
        # explicit overwrite discards the old state
        SPCService(
            repro.open(paper_graph), durability_dir=d, overwrite=True
        ).close()

    def test_checkpoint_records_applied_seq(self, paper_graph, tmp_path):
        d = str(tmp_path)
        with SPCService(repro.open(paper_graph), durability_dir=d) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
            path = service.checkpoint()
            assert load_checkpoint(path)["applied_seq"] == 1

    def test_checkpoint_truncate_wal(self, paper_graph, tmp_path):
        d = str(tmp_path)
        with SPCService(repro.open(paper_graph), durability_dir=d) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
            service.checkpoint(truncate_wal=True)
            service.submit(InsertEdge(0, 9))
            service.flush()
        records = list(read_wal(os.path.join(d, WAL_FILENAME)))
        # the truncated log opens with a checkpoint marker (empty updates
        # at the truncation seq) so WAL tailers can detect the compaction
        assert records == [(1, []), (2, [InsertEdge(0, 9)])]
        restored = restore(d)
        try:
            assert restored.query(0, 4) == (1, 1)
            assert restored.query(0, 9) == (1, 1)
        finally:
            restored.close()

    def test_truncate_wal_refused_for_external_checkpoint(self, paper_graph,
                                                          tmp_path):
        d = str(tmp_path / "state")
        external = str(tmp_path / "backup.json")
        with SPCService(repro.open(paper_graph), durability_dir=d) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
            with pytest.raises(ServeError, match="orphan"):
                service.checkpoint(external, truncate_wal=True)
            # the directory's recoverability is intact
            service.checkpoint(external)  # plain external copy is fine
        restored = restore(d)
        try:
            assert restored.query(0, 4) == (1, 1)
        finally:
            restored.close()

    def test_restore_continues_epoch_numbering(self, paper_graph, tmp_path):
        d = str(tmp_path)
        with SPCService(repro.open(paper_graph), durability_dir=d) as service:
            service.submit_many([InsertEdge(0, 4), InsertEdge(0, 9)])
            service.flush()
            live_epoch = service.snapshot().epoch
        restored = restore(d)
        try:
            assert restored.snapshot().epoch >= live_epoch
        finally:
            restored.close()

    def test_checkpoint_without_durability_needs_path(self, paper_graph):
        with SPCService(repro.open(paper_graph)) as service:
            with pytest.raises(ServeError, match="path"):
                service.checkpoint()

    def test_restore_bare_checkpoint_file(self, paper_graph, tmp_path):
        path = str(tmp_path / "ckpt.json")
        with SPCService(repro.open(paper_graph)) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
            service.checkpoint(path)
        restored = restore(path)
        try:
            assert restored.query(0, 4) == (1, 1)
            assert restored.config.durability_dir is None
        finally:
            restored.close()

    def test_restore_bare_file_into_new_durability_dir(self, paper_graph,
                                                       tmp_path):
        ckpt = str(tmp_path / "ckpt.json")
        new_dir = str(tmp_path / "fresh")
        with SPCService(repro.open(paper_graph)) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
            service.checkpoint(ckpt)
        restored = restore(ckpt, durability_dir=new_dir)
        try:
            restored.submit(InsertEdge(0, 9))
            restored.flush()
        finally:
            restored.close()
        # the new directory must be self-contained: a base checkpoint the
        # WAL applies to, not a WAL floating without its base state.
        again = restore(new_dir)
        try:
            assert again.query(0, 4) == (1, 1)
            assert again.query(0, 9) == (1, 1)
        finally:
            again.close()

    def test_restore_resumes_across_path_spellings(self, paper_graph,
                                                   tmp_path):
        d = str(tmp_path / "state")
        with SPCService(repro.open(paper_graph), durability_dir=d) as service:
            service.submit(InsertEdge(0, 4))
            service.flush()
        # "state/" and "state" are the same directory: restore must take
        # the resume path, not trip the existing-checkpoint guard.
        restored = restore(d + os.sep, durability_dir=d)
        try:
            assert restored.query(0, 4) == (1, 1)
            restored.submit(InsertEdge(0, 9))
            restored.flush()
        finally:
            restored.close()
        again = restore(d)
        try:
            assert again.query(0, 9) == (1, 1)
        finally:
            again.close()

    def test_restore_missing_checkpoint(self, tmp_path):
        with pytest.raises(ServeError, match="no checkpoint"):
            restore(str(tmp_path / "nothing.json"))


class TestRestoreEquivalence:
    """checkpoint + restore + WAL replay == the live engine, per backend."""

    @pytest.mark.parametrize("backend,make", BACKEND_GRAPHS)
    def test_wal_tail_replay_matches_live(self, backend, make, tmp_path):
        d = str(tmp_path)
        engine = make_engine(backend, make)
        service = SPCService(engine, durability_dir=d, publish_every=4)
        ins = random_insertions(engine.graph, 10, seed=11)
        service.submit_many(ins[:5])
        service.flush()
        service.checkpoint()  # mid-stream checkpoint: the rest is WAL tail
        service.submit_many(ins[5:])
        dels = random_deletions(engine.graph, 5, seed=12)
        service.submit_many(dels)
        service.flush()
        service.close()

        restored = restore(d)
        try:
            pairs = all_pairs_sample(engine.graph)
            assert restored.query_many(pairs) == [
                engine.index.query(s, t) for s, t in pairs
            ]
            assert restored.applied_seq == service.applied_seq
        finally:
            restored.close()

    @pytest.mark.parametrize("backend,make", BACKEND_GRAPHS)
    def test_restored_service_keeps_working(self, backend, make, tmp_path):
        d = str(tmp_path)
        engine = make_engine(backend, make)
        service = SPCService(engine, durability_dir=d)
        ins = random_insertions(engine.graph, 6, seed=21)
        service.submit_many(ins[:3])
        service.flush()
        service.close()

        restored = restore(d)
        restored.submit_many(ins[3:])
        restored.flush()
        restored.close()

        # a second restore replays the WAL the restored service extended
        again = restore(d)
        try:
            reference = make_engine(backend, make)
            reference.apply_stream(ins)
            pairs = all_pairs_sample(reference.graph)
            assert again.query_many(pairs) == [
                reference.index.query(s, t) for s, t in pairs
            ]
        finally:
            again.close()


class TestWriterRobustness:
    def test_uncoalescible_typeerror_survives_the_writer(self, paper_graph):
        # Coalescing itself raises TypeError on unorderable endpoints;
        # the batch must fall back to verbatim replay instead of killing
        # the writer thread.
        engine = repro.open(paper_graph)
        with SPCService(engine) as service:
            service.submit_many([InsertEdge([1], 2), InsertEdge(0, 4)])
            service.flush()
            assert len(service.errors) == 1
            assert service.query(0, 4) == (1, 1)
