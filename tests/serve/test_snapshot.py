"""SnapshotView: immutability, epoch pinning, and the lock-free read path."""

import pytest

import repro
from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import ReadOnlyError
from repro.graph.generators import erdos_renyi, random_directed, random_weighted
from repro.serve.snapshot import _MUTATORS, SnapshotView
from repro.workloads import InsertEdge

BACKEND_GRAPHS = [
    ("core", lambda: erdos_renyi(30, 60, seed=1)),
    ("directed", lambda: random_directed(30, 60, seed=1)),
    ("weighted", lambda: random_weighted(30, 60, seed=1)),
    ("sd", lambda: erdos_renyi(30, 60, seed=1)),
]


def snapshot_of(engine, seq=0):
    backend = engine.backend
    return SnapshotView(
        backend.snapshot_index(), backend.name, engine.epoch, seq,
        published_at=0.0,
    )


@pytest.fixture
def engine(paper_graph):
    return repro.open(paper_graph)


class TestReadPath:
    def test_query_matches_engine(self, engine):
        snap = snapshot_of(engine)
        for s in range(12):
            for t in range(12):
                assert snap.query(s, t) == engine.index.query(s, t)

    def test_query_many_matches_and_preserves_order(self, engine):
        snap = snapshot_of(engine)
        pairs = [(0, 4), (0, 9), (0, 4), (3, 7), (11, 2)]
        assert snap.query_many(pairs) == [snap.query(s, t) for s, t in pairs]

    def test_distance_and_count(self, engine):
        snap = snapshot_of(engine)
        d, c = snap.query(0, 4)
        assert snap.distance(0, 4) == d
        assert snap.count(0, 4) == c

    @pytest.mark.parametrize("backend,make", BACKEND_GRAPHS)
    def test_all_backends(self, backend, make):
        eng = SPCEngine(make(), config=EngineConfig(backend=backend))
        snap = snapshot_of(eng)
        vs = sorted(eng.graph.vertices())
        pairs = [(s, t) for s in vs[:5] for t in vs[-5:]]
        assert snap.query_many(pairs) == [eng.index.query(s, t) for s, t in pairs]


class TestIsolation:
    def test_snapshot_survives_engine_updates(self, engine):
        snap = snapshot_of(engine)
        before = snap.query(0, 4)
        engine.insert_edge(0, 4)
        assert engine.query(0, 4) == (1, 1)
        assert snap.query(0, 4) == before  # pinned epoch, unchanged

    def test_metadata(self, engine):
        engine.apply(InsertEdge(0, 4))
        snap = snapshot_of(engine, seq=7)
        assert snap.epoch == engine.epoch
        assert snap.seq == 7
        assert snap.backend_name == "core"
        assert "epoch" in repr(snap)


class TestReadOnly:
    @pytest.mark.parametrize("method", _MUTATORS)
    def test_every_mutator_rejected(self, engine, method):
        snap = snapshot_of(engine)
        with pytest.raises(ReadOnlyError, match="immutable"):
            getattr(snap, method)()

    def test_rejection_names_the_escape_hatch(self, engine):
        snap = snapshot_of(engine)
        with pytest.raises(ReadOnlyError, match="SPCService.submit"):
            snap.insert_edge(0, 4)

    def test_index_unchanged_after_rejection(self, engine):
        snap = snapshot_of(engine)
        before = snap.query(0, 4)
        with pytest.raises(ReadOnlyError):
            snap.delete_edge(0, 1)
        assert snap.query(0, 4) == before
