"""WAL encoding, replay semantics, crash tolerance, and tailing."""

import json

import pytest

from repro.exceptions import CheckpointMismatchError, ServeError
from repro.serve.wal import (
    WalTailer,
    WriteAheadLog,
    decode_update,
    encode_update,
    last_wal_seq,
    read_wal,
    record_crc,
)
from repro.workloads import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    SetWeight,
)

ROUNDTRIP_UPDATES = [
    InsertEdge(1, 2),
    InsertEdge(1, 2, weight=3.5),
    DeleteEdge(4, 5),
    DeleteEdge(4, 5, weight=2),
    SetWeight(1, 2, 7),
    InsertVertex(9),
    InsertVertex(9, edges=(1, 2)),
    DeleteVertex(9),
]


class TestCodec:
    @pytest.mark.parametrize("update", ROUNDTRIP_UPDATES, ids=repr)
    def test_roundtrip(self, update):
        encoded = encode_update(update)
        assert json.loads(json.dumps(encoded)) == encoded
        assert decode_update(encoded) == update

    def test_weighted_insert_vertex_edges_roundtrip(self):
        update = InsertVertex(9, edges=((1, 2.5), (3, 4.0)))
        assert decode_update(encode_update(update)) == update

    def test_unserializable_update_rejected(self):
        with pytest.raises(ServeError, match="WAL-serializable"):
            encode_update(object())

    def test_corrupt_record_rejected(self):
        with pytest.raises(ServeError, match="corrupt"):
            decode_update(["??", 1, 2])


class TestLog:
    def test_append_and_read(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.append(2, [DeleteEdge(0, 1), InsertEdge(2, 3)])
        log.close()
        assert list(read_wal(path)) == [
            (1, [InsertEdge(0, 1)]),
            (2, [DeleteEdge(0, 1), InsertEdge(2, 3)]),
        ]
        assert list(read_wal(path, after_seq=1)) == [
            (2, [DeleteEdge(0, 1), InsertEdge(2, 3)]),
        ]
        assert last_wal_seq(path) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert list(read_wal(str(tmp_path / "absent.jsonl"))) == []
        assert last_wal_seq(str(tmp_path / "absent.jsonl")) == 0

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path, "a") as f:
            f.write('{"seq": 2, "updates": [["ie", 5')  # crash mid-append
        assert list(read_wal(path)) == [(1, [InsertEdge(0, 1)])]

    def test_reopen_after_torn_tail_trims_before_appending(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path, "a") as f:
            f.write('{"seq": 2, "updates": [["ie", 5')  # crash mid-append
        # A crash-restarted appender must not glue record 2 onto the
        # fragment — the torn bytes are trimmed on open.
        log = WriteAheadLog(path)
        log.append(2, [InsertEdge(5, 6)])
        log.close()
        assert list(read_wal(path)) == [
            (1, [InsertEdge(0, 1)]),
            (2, [InsertEdge(5, 6)]),
        ]

    def test_unterminated_final_line_never_replayed(self, tmp_path):
        # A final line whose JSON is complete but whose newline never hit
        # disk was never acknowledged: the reader must drop it, exactly
        # like the appender's trim does — otherwise one restore replays a
        # record that the next append erases, and the log silently skips
        # a sequence number on the restore after that.
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path, "a") as f:
            f.write('{"seq": 2, "updates": [["ie", 5, 6, null]]}')  # no \n
        assert [seq for seq, _ in read_wal(path)] == [1]
        log = WriteAheadLog(path)  # trims the unacknowledged bytes
        log.append(2, [InsertEdge(7, 8)])
        log.close()
        assert list(read_wal(path)) == [
            (1, [InsertEdge(0, 1)]),
            (2, [InsertEdge(7, 8)]),
        ]

    def test_reopen_entirely_torn_file(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w") as f:
            f.write('{"seq": 1')  # nothing ever completed
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        assert list(read_wal(path)) == [(1, [InsertEdge(0, 1)])]

    def test_corrupt_acknowledged_final_record_raises(self, tmp_path):
        # A newline-terminated line was flushed and acknowledged; if it no
        # longer parses, that is corruption of durable state and must fail
        # loudly — silently dropping it would serve diverged answers.
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path, "a") as f:
            f.write("bit rot, but terminated\n")
        with pytest.raises(ServeError, match="corrupt"):
            list(read_wal(path))

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w") as f:
            f.write("not json\n")
            f.write('{"seq": 1, "updates": []}\n')
        with pytest.raises(ServeError, match="corrupt"):
            list(read_wal(path))

    def test_non_monotone_seq_raises(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(2, [InsertEdge(0, 1)])
        log.append(1, [InsertEdge(2, 3)])
        log.close()
        with pytest.raises(ServeError, match="non-monotone"):
            list(read_wal(path))

    def test_truncate(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.truncate()
        log.append(2, [InsertEdge(2, 3)])
        log.close()
        assert list(read_wal(path)) == [(2, [InsertEdge(2, 3)])]

    def test_fsync_mode_appends(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path, fsync=True)
        log.append(1, [SetWeight(0, 1, 4)])
        log.close()
        assert list(read_wal(path)) == [(1, [SetWeight(0, 1, 4)])]

    def test_size_tracks_appends_and_truncate(self, tmp_path):
        import os

        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        assert log.size == 0
        log.append(1, [InsertEdge(0, 1)])
        assert log.size == os.path.getsize(path) > 0
        log.truncate()
        assert log.size == 0
        log.close()


class TestBackendStamping:
    def test_stamped_records_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path, backend="core")
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path) as f:
            assert json.loads(f.readline())["backend"] == "core"
        assert list(read_wal(path, expect_backend="core")) == [
            (1, [InsertEdge(0, 1)])
        ]

    def test_foreign_stamp_refused(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path, backend="weighted")
        log.append(1, [InsertEdge(0, 1, weight=2)])
        log.close()
        with pytest.raises(CheckpointMismatchError, match="weighted"):
            list(read_wal(path, expect_backend="core"))

    def test_unstamped_records_accepted_by_any_expectation(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)  # legacy: no backend stamp
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        assert [s for s, _ in read_wal(path, expect_backend="core")] == [1]


class TestTailer:
    def test_incremental_polls_see_only_new_records(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        tailer = WalTailer(path)
        assert tailer.poll() == ([], False)  # not written yet
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        assert tailer.poll() == ([(1, [InsertEdge(0, 1)])], False)
        assert tailer.poll() == ([], False)
        log.append(2, [DeleteEdge(0, 1)])
        log.append(3, [InsertEdge(2, 3)])
        records, gap = tailer.poll()
        assert not gap
        assert [seq for seq, _ in records] == [2, 3]
        log.close()

    def test_after_seq_skips_checkpointed_prefix(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        for seq in (1, 2, 3):
            log.append(seq, [InsertEdge(seq, seq + 10)])
        log.close()
        tailer = WalTailer(path, after_seq=2)
        records, gap = tailer.poll()
        assert not gap
        assert [seq for seq, _ in records] == [3]

    def test_torn_tail_not_consumed_until_complete(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        tailer = WalTailer(path)
        assert [s for (s, _) in tailer.poll()[0]] == [1]
        crc = record_crc(2, [["ie", 5, 6, None]])
        with open(path, "a") as f:
            f.write('{"seq": 2, "updates": [["ie", 5')  # mid-append
        assert tailer.poll() == ([], False)
        with open(path, "a") as f:
            f.write(', 6, null]], "crc": %d}\n' % crc)  # the append completes
        records, gap = tailer.poll()
        assert not gap
        assert records == [(2, [InsertEdge(5, 6)])]
        log.close()

    def test_caught_up_tailer_survives_truncation_without_gap(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.append(2, [InsertEdge(2, 3)])
        tailer = WalTailer(path)
        tailer.poll()  # fully caught up at seq 2
        log.truncate()  # the primary compacted beneath the tailer
        log.append(2, [])  # ...and left the checkpoint marker
        assert tailer.poll() == ([], False)  # marker skipped, no gap
        log.append(3, [InsertEdge(4, 5)])
        records, gap = tailer.poll()
        assert not gap  # compaction cost a caught-up tailer nothing
        assert [seq for seq, _ in records] == [3]
        log.close()

    def test_truncation_rebootstraps_a_lagging_tailer(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        tailer = WalTailer(path)
        tailer.poll()  # at seq 1
        log.append(2, [InsertEdge(2, 3)])  # never polled
        log.truncate()
        log.append(2, [])  # marker: everything <= 2 is checkpoint-only now
        log.close()
        assert tailer.poll() == ([], True)

    def test_compaction_marker_at_head_reports_a_gap(self, tmp_path):
        # A lagging tailer (offset 0) reading a freshly compacted log must
        # learn from the head marker that records were compacted away.
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(5, [])  # the truncation marker a checkpoint leaves
        log.close()
        tailer = WalTailer(path, after_seq=2)
        records, gap = tailer.poll()
        assert records == []
        assert gap

    def test_marker_at_next_seq_is_never_applied_as_a_record(self, tmp_path):
        # Regression: a marker whose seq is exactly last + 1 stands in
        # for a *truncated* batch; applying it as an empty record would
        # silently skip that batch's updates and diverge the replica.
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(4, [])  # checkpoint at 4; tailer below sits at 3
        log.append(5, [InsertEdge(0, 1)])
        log.close()
        tailer = WalTailer(path, after_seq=3)
        records, gap = tailer.poll()
        assert records == []
        assert gap  # must re-bootstrap, not fake-apply seq 4

    def test_caught_up_tailer_skips_the_marker(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(5, [])
        log.append(6, [InsertEdge(0, 1)])
        log.close()
        tailer = WalTailer(path, after_seq=5)
        records, gap = tailer.poll()
        assert not gap
        assert [seq for seq, _ in records] == [6]

    def test_sequence_jump_reports_a_gap(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        tailer = WalTailer(path)
        tailer.poll()
        log.append(4, [InsertEdge(2, 3)])  # 2 and 3 are gone
        log.close()
        records, gap = tailer.poll()
        assert records == []
        assert gap

    def test_garbage_mid_stream_reports_a_gap(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w") as f:
            f.write("glued fragment not json\n")
        tailer = WalTailer(path)
        assert tailer.poll() == ([], True)

    def test_foreign_stamp_raises_not_gap(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path, backend="directed")
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        tailer = WalTailer(path, expect_backend="core")
        with pytest.raises(CheckpointMismatchError, match="directed"):
            tailer.poll()
