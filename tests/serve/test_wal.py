"""WAL encoding, replay semantics, and crash tolerance."""

import json

import pytest

from repro.exceptions import ServeError
from repro.serve.wal import (
    WriteAheadLog,
    decode_update,
    encode_update,
    last_wal_seq,
    read_wal,
)
from repro.workloads import (
    DeleteEdge,
    DeleteVertex,
    InsertEdge,
    InsertVertex,
    SetWeight,
)

ROUNDTRIP_UPDATES = [
    InsertEdge(1, 2),
    InsertEdge(1, 2, weight=3.5),
    DeleteEdge(4, 5),
    DeleteEdge(4, 5, weight=2),
    SetWeight(1, 2, 7),
    InsertVertex(9),
    InsertVertex(9, edges=(1, 2)),
    DeleteVertex(9),
]


class TestCodec:
    @pytest.mark.parametrize("update", ROUNDTRIP_UPDATES, ids=repr)
    def test_roundtrip(self, update):
        encoded = encode_update(update)
        assert json.loads(json.dumps(encoded)) == encoded
        assert decode_update(encoded) == update

    def test_weighted_insert_vertex_edges_roundtrip(self):
        update = InsertVertex(9, edges=((1, 2.5), (3, 4.0)))
        assert decode_update(encode_update(update)) == update

    def test_unserializable_update_rejected(self):
        with pytest.raises(ServeError, match="WAL-serializable"):
            encode_update(object())

    def test_corrupt_record_rejected(self):
        with pytest.raises(ServeError, match="corrupt"):
            decode_update(["??", 1, 2])


class TestLog:
    def test_append_and_read(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.append(2, [DeleteEdge(0, 1), InsertEdge(2, 3)])
        log.close()
        assert list(read_wal(path)) == [
            (1, [InsertEdge(0, 1)]),
            (2, [DeleteEdge(0, 1), InsertEdge(2, 3)]),
        ]
        assert list(read_wal(path, after_seq=1)) == [
            (2, [DeleteEdge(0, 1), InsertEdge(2, 3)]),
        ]
        assert last_wal_seq(path) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert list(read_wal(str(tmp_path / "absent.jsonl"))) == []
        assert last_wal_seq(str(tmp_path / "absent.jsonl")) == 0

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path, "a") as f:
            f.write('{"seq": 2, "updates": [["ie", 5')  # crash mid-append
        assert list(read_wal(path)) == [(1, [InsertEdge(0, 1)])]

    def test_reopen_after_torn_tail_trims_before_appending(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path, "a") as f:
            f.write('{"seq": 2, "updates": [["ie", 5')  # crash mid-append
        # A crash-restarted appender must not glue record 2 onto the
        # fragment — the torn bytes are trimmed on open.
        log = WriteAheadLog(path)
        log.append(2, [InsertEdge(5, 6)])
        log.close()
        assert list(read_wal(path)) == [
            (1, [InsertEdge(0, 1)]),
            (2, [InsertEdge(5, 6)]),
        ]

    def test_unterminated_final_line_never_replayed(self, tmp_path):
        # A final line whose JSON is complete but whose newline never hit
        # disk was never acknowledged: the reader must drop it, exactly
        # like the appender's trim does — otherwise one restore replays a
        # record that the next append erases, and the log silently skips
        # a sequence number on the restore after that.
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path, "a") as f:
            f.write('{"seq": 2, "updates": [["ie", 5, 6, null]]}')  # no \n
        assert [seq for seq, _ in read_wal(path)] == [1]
        log = WriteAheadLog(path)  # trims the unacknowledged bytes
        log.append(2, [InsertEdge(7, 8)])
        log.close()
        assert list(read_wal(path)) == [
            (1, [InsertEdge(0, 1)]),
            (2, [InsertEdge(7, 8)]),
        ]

    def test_reopen_entirely_torn_file(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w") as f:
            f.write('{"seq": 1')  # nothing ever completed
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        assert list(read_wal(path)) == [(1, [InsertEdge(0, 1)])]

    def test_corrupt_acknowledged_final_record_raises(self, tmp_path):
        # A newline-terminated line was flushed and acknowledged; if it no
        # longer parses, that is corruption of durable state and must fail
        # loudly — silently dropping it would serve diverged answers.
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.close()
        with open(path, "a") as f:
            f.write("bit rot, but terminated\n")
        with pytest.raises(ServeError, match="corrupt"):
            list(read_wal(path))

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w") as f:
            f.write("not json\n")
            f.write('{"seq": 1, "updates": []}\n')
        with pytest.raises(ServeError, match="corrupt"):
            list(read_wal(path))

    def test_non_monotone_seq_raises(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(2, [InsertEdge(0, 1)])
        log.append(1, [InsertEdge(2, 3)])
        log.close()
        with pytest.raises(ServeError, match="non-monotone"):
            list(read_wal(path))

    def test_truncate(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path)
        log.append(1, [InsertEdge(0, 1)])
        log.truncate()
        log.append(2, [InsertEdge(2, 3)])
        log.close()
        assert list(read_wal(path)) == [(2, [InsertEdge(2, 3)])]

    def test_fsync_mode_appends(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        log = WriteAheadLog(path, fsync=True)
        log.append(1, [SetWeight(0, 1, 4)])
        log.close()
        assert list(read_wal(path)) == [(1, [SetWeight(0, 1, 4)])]
