"""Regression: restore fails loudly and early on checkpoint/WAL mismatch.

Before the guard, restoring a durability directory whose checkpoint and
WAL came from different backend families surfaced as whatever the replay
happened to trip over — an ``EngineError`` about weights, a bare
``KeyError``, or (directed checkpoint + undirected WAL) *no error at
all*, silently diverging state.  Restore now refuses with
:class:`~repro.exceptions.CheckpointMismatchError` before applying
anything: WAL records are stamped with the family that wrote them, and
unstamped foreign logs are wrapped at replay time.
"""

import json
import os
import shutil

import pytest

from repro.engine import EngineConfig, SPCEngine
from repro.exceptions import CheckpointMismatchError, ServeError
from repro.graph.generators import erdos_renyi, random_directed, random_weighted
from repro.serve import (
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    SPCService,
    load_checkpoint,
    restore,
)
from repro.workloads import random_insertions

_MAKERS = {
    "core": erdos_renyi,
    "sd": erdos_renyi,
    "directed": random_directed,
    "weighted": random_weighted,
}


def _populated_dir(tmp_path, backend, updates=4):
    d = str(tmp_path / backend)
    graph = _MAKERS[backend](30, 60, seed=5)
    engine = SPCEngine(graph, config=EngineConfig(backend=backend))
    service = SPCService(engine, durability_dir=d)
    service.submit_many(random_insertions(engine.graph, updates, seed=1))
    service.flush()
    service.close()
    return d


@pytest.mark.parametrize(
    "ckpt_backend,wal_backend",
    [
        ("weighted", "core"),
        ("core", "weighted"),
        ("directed", "core"),   # silently diverged before the guard
        ("core", "directed"),
        ("weighted", "directed"),
    ],
)
def test_mixed_family_restore_refused(tmp_path, ckpt_backend, wal_backend):
    ckpt_dir = _populated_dir(tmp_path, ckpt_backend)
    wal_dir = _populated_dir(tmp_path, wal_backend)
    # simulate the operator mix-up: a foreign checkpoint lands in a
    # directory whose WAL belongs to another service
    shutil.copy(
        os.path.join(ckpt_dir, SNAPSHOT_FILENAME),
        os.path.join(wal_dir, SNAPSHOT_FILENAME),
    )
    with pytest.raises(CheckpointMismatchError, match="backend|replay"):
        restore(wal_dir).close()


def test_unstamped_foreign_wal_still_refused(tmp_path):
    # Logs written before backend/crc stamping existed carry neither
    # field; the replay-time wrapper must still name the mismatch clearly.
    core_dir = _populated_dir(tmp_path, "core")
    weighted_dir = _populated_dir(tmp_path, "weighted")
    wal_path = os.path.join(core_dir, WAL_FILENAME)
    with open(wal_path) as f:
        records = [json.loads(line) for line in f if line.strip()]
    for record in records:
        record.pop("backend", None)
        record.pop("crc", None)
    with open(wal_path, "w") as f:
        for record in records:
            f.write(json.dumps(record) + "\n")
    shutil.copy(
        os.path.join(weighted_dir, SNAPSHOT_FILENAME),
        os.path.join(core_dir, SNAPSHOT_FILENAME),
    )
    with pytest.raises(CheckpointMismatchError, match="does not replay"):
        restore(core_dir).close()


def test_sibling_families_share_update_shapes(tmp_path):
    # core and sd run over the same Graph type and the same update
    # shapes; a core WAL under an sd checkpoint replays cleanly when the
    # record stamps agree with reality, so only a *stamped* mismatch
    # should refuse.  (This pins the guard to real mismatches.)
    core_dir = _populated_dir(tmp_path, "core")
    sd_dir = _populated_dir(tmp_path, "sd")
    shutil.copy(
        os.path.join(sd_dir, SNAPSHOT_FILENAME),
        os.path.join(core_dir, SNAPSHOT_FILENAME),
    )
    with pytest.raises(CheckpointMismatchError, match="'core'"):
        restore(core_dir).close()


def test_tampered_index_payload_refused(tmp_path):
    # A checkpoint whose declared backend does not match its own index
    # payload (hand-edited or mixed up) used to die with a bare KeyError
    # deep in from_dict.
    core_dir = _populated_dir(tmp_path, "core")
    directed_dir = _populated_dir(tmp_path, "directed")
    core_payload = load_checkpoint(os.path.join(core_dir, SNAPSHOT_FILENAME))
    directed_payload = load_checkpoint(
        os.path.join(directed_dir, SNAPSHOT_FILENAME)
    )
    core_payload["index"] = directed_payload["index"]
    # drop the checksum: this test pins the *semantic* backend-vs-index
    # guard, which must hold even for unstamped (legacy) checkpoints
    core_payload.pop("crc", None)
    with open(os.path.join(core_dir, SNAPSHOT_FILENAME), "w") as f:
        json.dump(core_payload, f)
    with pytest.raises(CheckpointMismatchError, match="index payload"):
        restore(core_dir)


def test_mismatch_error_is_a_serve_error(tmp_path):
    # callers catching the serving layer's exception family keep working
    assert issubclass(CheckpointMismatchError, ServeError)


def test_matching_pair_still_restores(tmp_path):
    d = _populated_dir(tmp_path, "weighted")
    restored = restore(d)
    try:
        assert restored.applied_seq >= 1
    finally:
        restored.close()
